//! Error type for the fleet layer.

use hide_core::CoreError;
use std::fmt;

/// Anything a fleet run can fail with.
///
/// Config problems are reported before any simulation work starts; the
/// root `hide` crate folds this into its top-level `HideError`.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FleetError {
    /// A fleet needs at least one BSS.
    NoBsses,
    /// A BSS needs at least one client.
    NoClients,
    /// The simulated horizon must be positive and finite.
    InvalidDuration(f64),
    /// A probability-like knob left `[0, 1]` (or was NaN).
    InvalidProbability {
        /// Name of the offending knob.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A duration-like churn knob was non-positive or non-finite.
    InvalidInterval {
        /// Name of the offending knob.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The stale timeout must exceed the refresh interval, else entries
    /// expire between perfectly delivered refreshes and the loss-free
    /// run would report phantom missed wakeups.
    StaleTimeoutTooShort {
        /// Configured stale timeout, seconds.
        stale_timeout_secs: f64,
        /// Configured refresh interval, seconds.
        refresh_interval_secs: f64,
    },
    /// A client needs at least one listened-on port.
    NoPorts,
    /// The HIDE protocol layer rejected an operation mid-run.
    Core(CoreError),
    /// The out-of-core export pipeline failed: spill-file I/O, a codec
    /// decode error, or a sink write. Carries the rendered cause
    /// (`FleetError` is `Clone`; `io::Error` is not).
    Export(String),
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::NoBsses => write!(f, "fleet must contain at least one BSS"),
            FleetError::NoClients => write!(f, "each BSS must contain at least one client"),
            FleetError::InvalidDuration(d) => {
                write!(f, "duration must be positive and finite, got {d}")
            }
            FleetError::InvalidProbability { what, value } => {
                write!(f, "{what} must be within [0, 1], got {value}")
            }
            FleetError::InvalidInterval { what, value } => {
                write!(f, "{what} must be positive and finite, got {value}")
            }
            FleetError::StaleTimeoutTooShort {
                stale_timeout_secs,
                refresh_interval_secs,
            } => write!(
                f,
                "stale timeout ({stale_timeout_secs} s) must exceed the refresh \
                 interval ({refresh_interval_secs} s)"
            ),
            FleetError::NoPorts => write!(f, "clients must listen on at least one port"),
            FleetError::Core(e) => write!(f, "protocol failure during fleet run: {e}"),
            FleetError::Export(msg) => write!(f, "streamed export failed: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FleetError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for FleetError {
    fn from(e: CoreError) -> Self {
        FleetError::Core(e)
    }
}

impl From<hide_obs::SpillError> for FleetError {
    fn from(e: hide_obs::SpillError) -> Self {
        FleetError::Export(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let cases = [
            FleetError::NoBsses,
            FleetError::NoClients,
            FleetError::InvalidDuration(-1.0),
            FleetError::InvalidProbability {
                what: "refresh_loss",
                value: 2.0,
            },
            FleetError::InvalidInterval {
                what: "mean_present_secs",
                value: 0.0,
            },
            FleetError::StaleTimeoutTooShort {
                stale_timeout_secs: 1.0,
                refresh_interval_secs: 5.0,
            },
            FleetError::NoPorts,
            FleetError::Export("spill file truncated at byte 9".into()),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(&e).is_none());
        }
        let wrapped = FleetError::from(CoreError::NoFreeAid);
        assert!(wrapped.to_string().contains("protocol failure"));
        assert!(std::error::Error::source(&wrapped).is_some());
        let spill = FleetError::from(hide_obs::SpillError::Truncated { offset: 9 });
        assert_eq!(
            spill,
            FleetError::Export("spill file truncated at byte 9".into())
        );
    }
}
