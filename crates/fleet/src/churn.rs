//! The client lifecycle (churn) model.
//!
//! Every client cycles through two independent alternating-renewal
//! processes with exponential dwell times:
//!
//! * **presence** — associated with the BSS or absent (roamed away,
//!   out of range). Joining runs the real `hide_wifi::assoc` exchange;
//!   leaving sends a Disassociation frame.
//! * **activity** — while present, screen-on *active* (radio awake,
//!   receives everything) or *suspended* (power-save; woken only by
//!   DTIM indications).
//!
//! HIDE clients additionally refresh their UDP Port Message every
//! [`ChurnConfig::refresh_interval_secs`], each delivery lost with
//! probability [`ChurnConfig::refresh_loss`]; with probability
//! [`ChurnConfig::port_churn`] a refresh also re-samples the client's
//! listened-on port set (apps starting/stopping). The AP ages out
//! entries not refreshed within [`ChurnConfig::stale_timeout_secs`].
//! The loss/staleness interplay is what produces missed and spurious
//! wakeups — outcomes the static `sim::network` layer cannot express.

use crate::error::FleetError;

/// Churn and refresh knobs for every client in the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Mean associated dwell before leaving, seconds.
    pub mean_present_secs: f64,
    /// Mean absent dwell before (re)joining, seconds.
    pub mean_absent_secs: f64,
    /// Mean screen-on dwell before suspending, seconds.
    pub mean_active_secs: f64,
    /// Mean suspended dwell before the user wakes the device, seconds.
    pub mean_suspended_secs: f64,
    /// UDP Port Message refresh period (the paper's sync interval).
    pub refresh_interval_secs: f64,
    /// Probability each refresh is lost before reaching the AP.
    pub refresh_loss: f64,
    /// Probability a refresh re-samples the client's port set.
    pub port_churn: f64,
    /// AP-side port-table entry lifetime without a refresh, seconds.
    pub stale_timeout_secs: f64,
    /// Ports each HIDE client listens on (drawn from the scenario mix).
    pub ports_per_client: usize,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        ChurnConfig {
            mean_present_secs: 600.0,
            mean_absent_secs: 120.0,
            mean_active_secs: 30.0,
            mean_suspended_secs: 300.0,
            refresh_interval_secs: 10.0,
            refresh_loss: 0.0,
            port_churn: 0.0,
            stale_timeout_secs: 60.0,
            ports_per_client: 4,
        }
    }
}

impl ChurnConfig {
    /// Checks every knob for sanity.
    ///
    /// # Errors
    ///
    /// Returns the [`FleetError`] naming the first offending knob.
    pub fn validate(&self) -> Result<(), FleetError> {
        let intervals = [
            ("mean_present_secs", self.mean_present_secs),
            ("mean_absent_secs", self.mean_absent_secs),
            ("mean_active_secs", self.mean_active_secs),
            ("mean_suspended_secs", self.mean_suspended_secs),
            ("refresh_interval_secs", self.refresh_interval_secs),
            ("stale_timeout_secs", self.stale_timeout_secs),
        ];
        for (what, value) in intervals {
            if !(value.is_finite() && value > 0.0) {
                return Err(FleetError::InvalidInterval { what, value });
            }
        }
        let probabilities = [
            ("refresh_loss", self.refresh_loss),
            ("port_churn", self.port_churn),
        ];
        for (what, value) in probabilities {
            if !(0.0..=1.0).contains(&value) || value.is_nan() {
                return Err(FleetError::InvalidProbability { what, value });
            }
        }
        if self.stale_timeout_secs <= self.refresh_interval_secs {
            return Err(FleetError::StaleTimeoutTooShort {
                stale_timeout_secs: self.stale_timeout_secs,
                refresh_interval_secs: self.refresh_interval_secs,
            });
        }
        if self.ports_per_client == 0 {
            return Err(FleetError::NoPorts);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        assert_eq!(ChurnConfig::default().validate(), Ok(()));
    }

    #[test]
    fn rejects_bad_intervals() {
        let c = ChurnConfig {
            mean_present_secs: 0.0,
            ..ChurnConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(FleetError::InvalidInterval {
                what: "mean_present_secs",
                ..
            })
        ));
        let c = ChurnConfig {
            refresh_interval_secs: f64::INFINITY,
            ..ChurnConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(FleetError::InvalidInterval {
                what: "refresh_interval_secs",
                ..
            })
        ));
    }

    #[test]
    fn rejects_bad_probabilities() {
        for bad in [-0.1, 1.5, f64::NAN] {
            let c = ChurnConfig {
                refresh_loss: bad,
                ..ChurnConfig::default()
            };
            assert!(matches!(
                c.validate(),
                Err(FleetError::InvalidProbability {
                    what: "refresh_loss",
                    ..
                })
            ));
        }
        let c = ChurnConfig {
            port_churn: 2.0,
            ..ChurnConfig::default()
        };
        assert!(matches!(
            c.validate(),
            Err(FleetError::InvalidProbability {
                what: "port_churn",
                ..
            })
        ));
    }

    #[test]
    fn rejects_stale_timeout_at_or_below_refresh() {
        let defaults = ChurnConfig::default();
        let c = ChurnConfig {
            stale_timeout_secs: defaults.refresh_interval_secs,
            ..defaults
        };
        assert!(matches!(
            c.validate(),
            Err(FleetError::StaleTimeoutTooShort { .. })
        ));
    }

    #[test]
    fn rejects_zero_ports() {
        let c = ChurnConfig {
            ports_per_client: 0,
            ..ChurnConfig::default()
        };
        assert_eq!(c.validate(), Err(FleetError::NoPorts));
    }
}
