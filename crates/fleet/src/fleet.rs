//! The multi-BSS fleet: shard-by-BSS parallel execution with a
//! deterministic, input-order merge.
//!
//! Every BSS runs as an independent shard (its seeds derive from the
//! fleet seed and its index, never from thread identity), producing a
//! [`BssReport`] and a private [`Recorder`]. The shards are merged in
//! BSS-index order, so the aggregate counters, histograms, and energy
//! sums — and the JSON they serialize to — are byte-identical at any
//! `--jobs` count.

use crate::bss::{run_bss, run_bss_profiled, run_bss_traced, BssReport};
use crate::churn::ChurnConfig;
use crate::error::FleetError;
use crate::profile::{FleetStage, StageProfile, StageProfiler};
use hide_energy::attribution::{
    metrics_section_for, write_csv_row, write_jsonl_row, ClientEnergy, ATTRIBUTION_CSV_HEADER,
};
use hide_energy::battery::Battery;
use hide_energy::profile::{DeviceProfile, NEXUS_ONE};
use hide_obs::spill::{SpillIndex, SpillWriter};
use hide_obs::{FlightRecorder, Recorder, Stage};
use hide_policy::{LifetimeProjection, WakePolicy};
use hide_traces::scenario::Scenario;
use std::io;
use std::path::PathBuf;
use std::time::Instant;

/// Full description of a fleet experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of independent BSSes (APs) in the fleet.
    pub bss_count: usize,
    /// Clients per BSS.
    pub clients_per_bss: usize,
    /// Fraction of clients running HIDE, clamped to `[0, 1]`.
    pub adoption: f64,
    /// Simulated horizon per BSS, seconds.
    pub duration_secs: f64,
    /// Broadcast traffic scenario every BSS draws from (each BSS gets
    /// its own decorrelated stream).
    pub scenario: Scenario,
    /// Device energy constants shared by every client.
    pub profile: DeviceProfile,
    /// Master seed; all per-BSS randomness derives from it.
    pub seed: u64,
    /// Client lifecycle knobs.
    pub churn: ChurnConfig,
    /// Power-save protocol suspended clients run. The default
    /// ([`WakePolicy::Hide`]) reproduces the pre-seam engine
    /// byte-for-byte; the other policies force every client legacy
    /// (no port refreshes) and change only the wake decision.
    pub policy: WakePolicy,
    /// Battery the lifetime projection extrapolates onto.
    pub battery: Battery,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            bss_count: 4,
            clients_per_bss: 16,
            adoption: 0.75,
            duration_secs: 30.0,
            scenario: Scenario::Starbucks,
            profile: NEXUS_ONE,
            seed: 42,
            churn: ChurnConfig::default(),
            policy: WakePolicy::Hide,
            battery: Battery::NEXUS_ONE,
        }
    }
}

impl FleetConfig {
    /// Checks the whole configuration, including the churn model.
    ///
    /// # Errors
    ///
    /// Returns the [`FleetError`] naming the first offending knob.
    pub fn validate(&self) -> Result<(), FleetError> {
        if self.bss_count == 0 {
            return Err(FleetError::NoBsses);
        }
        if self.clients_per_bss == 0 {
            return Err(FleetError::NoClients);
        }
        if !(self.duration_secs.is_finite() && self.duration_secs > 0.0) {
            return Err(FleetError::InvalidDuration(self.duration_secs));
        }
        if self.adoption.is_nan() {
            return Err(FleetError::InvalidProbability {
                what: "adoption",
                value: self.adoption,
            });
        }
        self.churn.validate()
    }

    /// Runs the fleet with the process-default jobs count.
    ///
    /// # Errors
    ///
    /// Returns a validation error before any work starts, or the first
    /// shard's protocol failure.
    pub fn try_run(&self) -> Result<FleetResult, FleetError> {
        self.try_run_with_jobs(hide_par::default_jobs())
    }

    /// Runs the fleet on exactly `jobs` worker threads (`0` or `1`
    /// runs inline). The result is byte-identical for every `jobs`
    /// value.
    ///
    /// # Errors
    ///
    /// Returns a validation error before any work starts, or the first
    /// (lowest-index) shard's protocol failure.
    pub fn try_run_with_jobs(&self, jobs: usize) -> Result<FleetResult, FleetError> {
        self.validate()?;
        let indices: Vec<usize> = (0..self.bss_count).collect();
        let shards = hide_par::par_map_jobs(jobs, &indices, |_, &i| run_bss(self, i));

        let merge_start = Instant::now();
        let mut report = BssReport::default();
        let mut recorder = Recorder::new();
        for shard in shards {
            let (bss, rec) = shard?;
            report.merge_from(&bss);
            recorder.merge_from(&rec);
        }
        recorder.add_span(Stage::FleetMerge, merge_start.elapsed().as_nanos() as u64);
        Ok(FleetResult::assemble(self, report, recorder))
    }

    /// [`try_run_with_jobs`](Self::try_run_with_jobs) with per-stage
    /// wall-time profiling on: every shard times its kernel's event
    /// loop into a private [`StageProfile`], fanned in alongside the
    /// reports. Profiling never touches the metrics artifact — the
    /// returned [`FleetResult`] is byte-identical to the unprofiled
    /// run's — but the run itself is a little slower (two timer reads
    /// per kernel event), so the default paths stay on
    /// [`NoopProfiler`](crate::NoopProfiler).
    ///
    /// # Errors
    ///
    /// Returns a validation error before any work starts, or the first
    /// (lowest-index) shard's protocol failure.
    pub fn try_run_profiled_with_jobs(
        &self,
        jobs: usize,
    ) -> Result<(FleetResult, StageProfile), FleetError> {
        self.validate()?;
        let indices: Vec<usize> = (0..self.bss_count).collect();
        let shards = hide_par::par_map_jobs(jobs, &indices, |_, &i| {
            let mut prof = StageProfile::new();
            run_bss_profiled(self, i, &mut hide_obs::NoopTrace, &mut prof)
                .map(|(bss, rec)| (bss, rec, prof))
        });

        let merge_start = Instant::now();
        let mut report = BssReport::default();
        let mut recorder = Recorder::new();
        let mut profile = StageProfile::new();
        for shard in shards {
            let (bss, rec, shard_prof) = shard?;
            report.merge_from(&bss);
            recorder.merge_from(&rec);
            profile.merge_from(&shard_prof);
        }
        let merge_nanos = merge_start.elapsed().as_nanos() as u64;
        recorder.add_span(Stage::FleetMerge, merge_nanos);
        profile.add(FleetStage::Merge, merge_nanos);
        Ok((FleetResult::assemble(self, report, recorder), profile))
    }

    /// [`try_run_with_jobs`](Self::try_run_with_jobs) with the flight
    /// recorder on: every shard records its kernel's structured events
    /// into a private [`FlightRecorder`] (source lane = BSS index,
    /// `capacity` events retained per shard), and the per-shard logs
    /// are folded in input order with an ordered merge — so the
    /// returned log, and anything exported from it, is byte-identical
    /// at any `jobs` count. The [`FleetResult`] itself is identical to
    /// the untraced run's.
    ///
    /// # Errors
    ///
    /// Returns a validation error before any work starts, or the first
    /// (lowest-index) shard's protocol failure.
    pub fn try_run_traced_with_jobs(
        &self,
        jobs: usize,
        capacity: usize,
    ) -> Result<(FleetResult, FlightRecorder), FleetError> {
        self.validate()?;
        let indices: Vec<usize> = (0..self.bss_count).collect();
        let shards = hide_par::par_map_jobs(jobs, &indices, |_, &i| {
            let mut flight = FlightRecorder::with_capacity(capacity);
            flight.set_source(i as u32);
            run_bss_traced(self, i, &mut flight).map(|(bss, rec)| (bss, rec, flight))
        });

        let merge_start = Instant::now();
        let mut report = BssReport::default();
        let mut recorder = Recorder::new();
        let mut logs = Vec::with_capacity(self.bss_count);
        for shard in shards {
            let (bss, rec, shard_flight) = shard?;
            report.merge_from(&bss);
            recorder.merge_from(&rec);
            logs.push(shard_flight);
        }
        // Tree-fold the per-shard logs. `merge_from` is an ordered
        // merge under the total (time, source, seq) order, so the fold
        // shape cannot change the merged sequence — but pairing
        // neighbors costs O(n log shards) where the sequential fold is
        // quadratic in the shard count.
        while logs.len() > 1 {
            let mut next = Vec::with_capacity(logs.len().div_ceil(2));
            let mut halves = logs.into_iter();
            while let Some(mut left) = halves.next() {
                if let Some(right) = halves.next() {
                    left.merge_from(&right);
                }
                next.push(left);
            }
            logs = next;
        }
        let flight = logs
            .pop()
            .unwrap_or_else(|| FlightRecorder::with_capacity(capacity));
        recorder.add_span(Stage::FleetMerge, merge_start.elapsed().as_nanos() as u64);
        Ok((FleetResult::assemble(self, report, recorder), flight))
    }

    /// [`try_run_traced_with_jobs`](Self::try_run_traced_with_jobs)
    /// rebuilt for metro scale: instead of holding every shard's
    /// flight log and attribution rows until the end, the fleet runs
    /// in **windows** of consecutive BSS indices. Each window fans out
    /// over `jobs` workers, its logs are tree-folded and appended to a
    /// spill file as one sorted run ([`SpillWriter`]), and its
    /// attribution rows stream straight into the optional `sinks`
    /// (shard keys are disjoint and ascending, so concatenation equals
    /// the merged ledger's export). Resident memory is bounded by the
    /// window — not the fleet — and the trace exports are produced
    /// afterwards by a chunked k-way merge over the spilled runs
    /// ([`StreamedFleetResult::write_trace_jsonl`]).
    ///
    /// Determinism: `(time, source, seq)` is a strict total order, so
    /// the k-way merge pops the same sequence the in-memory tree fold
    /// produces, at any `jobs`, window, or chunk size — every exported
    /// byte matches the in-memory path (pinned by
    /// `crates/bench/tests/stream_differential.rs`).
    ///
    /// # Errors
    ///
    /// Returns a validation error before any work starts, the first
    /// (lowest-index) shard's protocol failure, or a
    /// [`FleetError::Export`] if spilling or a sink write fails. The
    /// spill file is removed on error.
    pub fn try_run_streamed_with_jobs(
        &self,
        jobs: usize,
        stream: &StreamExportConfig,
        mut sinks: StreamSinks<'_>,
    ) -> Result<StreamedFleetResult, FleetError> {
        self.validate()?;
        std::fs::create_dir_all(&stream.spill_dir).map_err(export_err)?;
        let spill_path = stream.spill_dir.join(unique_spill_name());
        let out = self.run_streamed_inner(jobs, stream, &mut sinks, &spill_path);
        if out.is_err() {
            let _ = std::fs::remove_file(&spill_path);
        }
        out
    }

    fn run_streamed_inner(
        &self,
        jobs: usize,
        stream: &StreamExportConfig,
        sinks: &mut StreamSinks<'_>,
        spill_path: &std::path::Path,
    ) -> Result<StreamedFleetResult, FleetError> {
        let window = if stream.window == 0 {
            (4 * jobs.max(1)).max(64)
        } else {
            stream.window.max(1)
        };
        let capacity = stream.trace_capacity.max(1);
        let mut writer = SpillWriter::create(spill_path, stream.chunk_events)?;

        let mut report = BssReport::default();
        let mut recorder = Recorder::new();
        let mut totals = ClientEnergy::default();
        let mut clients = 0usize;
        let mut lane = String::with_capacity(4096);
        let mut merge_nanos = 0u64;

        if let Some(csv) = sinks.attribution_csv.as_deref_mut() {
            csv.write_all(ATTRIBUTION_CSV_HEADER.as_bytes())
                .map_err(export_err)?;
        }

        let mut start = 0usize;
        while start < self.bss_count {
            let end = (start + window).min(self.bss_count);
            let indices: Vec<usize> = (start..end).collect();
            let shards = hide_par::par_map_jobs(jobs, &indices, |_, &i| {
                let mut flight = FlightRecorder::with_capacity(capacity);
                flight.set_source(i as u32);
                run_bss_traced(self, i, &mut flight).map(|(bss, rec)| (bss, rec, flight))
            });

            let merge_start = Instant::now();
            let mut logs = Vec::with_capacity(indices.len());
            for shard in shards {
                let (mut bss, rec, shard_flight) = shard?;
                // Stream the shard's attribution rows out instead of
                // accumulating the fleet-wide ledger: row keys are
                // `(bss_index, aid)`, disjoint and ascending across
                // shards, so appending per shard yields the exact rows
                // (and bytes) the merged ledger would export.
                let attribution = std::mem::take(&mut bss.attribution);
                lane.clear();
                for (key, e) in attribution.rows() {
                    if sinks.attribution_csv.is_some() {
                        write_csv_row(&mut lane, *key, e);
                    }
                    totals.merge_from(e);
                    clients += 1;
                }
                if let Some(csv) = sinks.attribution_csv.as_deref_mut() {
                    csv.write_all(lane.as_bytes()).map_err(export_err)?;
                }
                if let Some(jsonl) = sinks.attribution_jsonl.as_deref_mut() {
                    lane.clear();
                    for (key, e) in attribution.rows() {
                        write_jsonl_row(&mut lane, *key, e);
                    }
                    jsonl.write_all(lane.as_bytes()).map_err(export_err)?;
                }
                report.merge_from(&bss);
                recorder.merge_from(&rec);
                logs.push(shard_flight);
            }
            // Tree-fold the window's logs (same fold as the in-memory
            // path) and append the window as one sorted run. The fold
            // never drops, so the run carries exactly the window's
            // events plus the sum of its shards' ring-bound drops.
            while logs.len() > 1 {
                let mut next = Vec::with_capacity(logs.len().div_ceil(2));
                let mut halves = logs.into_iter();
                while let Some(mut left) = halves.next() {
                    if let Some(right) = halves.next() {
                        left.merge_from(&right);
                    }
                    next.push(left);
                }
                logs = next;
            }
            let mut folded = logs
                .pop()
                .unwrap_or_else(|| FlightRecorder::with_capacity(capacity));
            let (events, dropped) = folded.take_spill_chunk();
            writer.write_run(&events, dropped)?;
            merge_nanos += merge_start.elapsed().as_nanos() as u64;
            start = end;
        }
        let spill = writer.finish()?;
        // One FleetMerge span, exactly like the in-memory paths — the
        // artifact serializes stage *call counts*, so the streamed
        // metrics JSON must record the same single merge stage.
        recorder.add_span(Stage::FleetMerge, merge_nanos);
        Ok(StreamedFleetResult {
            result: FleetResult::assemble(self, report, recorder),
            spill,
            energy_totals: totals,
            energy_clients: clients,
        })
    }
}

/// Knobs of the out-of-core streamed export
/// ([`FleetConfig::try_run_streamed_with_jobs`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamExportConfig {
    /// Directory the spill file is created in (created if missing).
    pub spill_dir: PathBuf,
    /// Events per framed spill chunk — the unit of both write
    /// batching and merge-time residency (the k-way merge holds one
    /// decoded chunk per run).
    pub chunk_events: usize,
    /// Consecutive BSS shards per window: the bound on resident shard
    /// state, and the number of runs is `ceil(bss_count / window)`.
    /// `0` picks `max(64, 4 × jobs)`.
    pub window: usize,
    /// Per-shard flight-recorder ring capacity (events retained before
    /// the oldest drop), as in
    /// [`try_run_traced_with_jobs`](FleetConfig::try_run_traced_with_jobs).
    pub trace_capacity: usize,
}

impl StreamExportConfig {
    /// Defaults for everything but the spill directory.
    #[must_use]
    pub fn new(spill_dir: impl Into<PathBuf>) -> Self {
        StreamExportConfig {
            spill_dir: spill_dir.into(),
            chunk_events: 1024,
            window: 0,
            trace_capacity: hide_obs::DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// Optional writers the streamed run feeds *during* execution — the
/// attribution lanes, whose rows leave memory shard by shard.
#[derive(Default)]
pub struct StreamSinks<'a> {
    /// Destination for the attribution CSV (header + one row per
    /// client lane), byte-identical to
    /// [`AttributionLedger::to_csv`](hide_energy::AttributionLedger::to_csv).
    pub attribution_csv: Option<&'a mut dyn io::Write>,
    /// Destination for the attribution JSONL, byte-identical to
    /// [`AttributionLedger::to_jsonl`](hide_energy::AttributionLedger::to_jsonl).
    pub attribution_jsonl: Option<&'a mut dyn io::Write>,
}

fn export_err(e: io::Error) -> FleetError {
    FleetError::Export(e.to_string())
}

fn unique_spill_name() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    format!("hide-spill-{}-{n}.bin", std::process::id())
}

/// Outcome of a streamed fleet run: the aggregate scalars and metrics
/// of a [`FleetResult`], plus the spilled trace runs the exporters
/// stream from and the energy totals accumulated in place of the
/// fleet-wide ledger.
///
/// `result.report.attribution` is intentionally **empty** — the rows
/// left memory through the [`StreamSinks`] as the fleet ran. Use
/// [`metrics_json_with_energy`](Self::metrics_json_with_energy) (not
/// `result.metrics_json_with_energy()`) so the energy section renders
/// from the accumulated totals.
#[derive(Debug)]
pub struct StreamedFleetResult {
    /// The assembled fleet result (attribution ledger empty; see the
    /// struct docs).
    pub result: FleetResult,
    /// Index over the spilled trace runs; one file on disk.
    pub spill: SpillIndex,
    /// Field-wise sum of every streamed attribution row.
    pub energy_totals: ClientEnergy,
    /// Number of streamed attribution rows (client lanes).
    pub energy_clients: usize,
}

impl StreamedFleetResult {
    /// Ring-bound drops across the whole fleet — the sum every spilled
    /// run carried, equal to the in-memory merged recorder's
    /// [`dropped`](FlightRecorder::dropped).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.spill.total_dropped()
    }

    /// Trace events spilled across the whole fleet.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.spill.total_events()
    }

    /// The `"energy"` metrics section rendered from the accumulated
    /// totals — byte-identical to the in-memory ledger's
    /// [`to_metrics_section`](hide_energy::AttributionLedger::to_metrics_section).
    #[must_use]
    pub fn energy_metrics_section(&self) -> String {
        metrics_section_for(&self.energy_totals, self.energy_clients)
    }

    /// The spliced `hide-metrics/1` document, byte-identical to the
    /// in-memory path's
    /// [`metrics_json_with_energy`](FleetResult::metrics_json_with_energy).
    #[must_use]
    pub fn metrics_json_with_energy(&self) -> String {
        let energy = self.energy_metrics_section();
        let policy = self.result.policy_metrics_section();
        let battery = self.result.lifetime.to_metrics_section();
        self.result.recorder.to_json_with_sections(&[
            ("energy", &energy),
            ("policy", &policy),
            ("battery", &battery),
        ])
    }

    /// Streams the merged trace as JSON Lines into `out`, holding one
    /// decoded chunk per spilled run. Byte-identical to
    /// [`hide_obs::export::to_jsonl`] over the in-memory merged log.
    /// Returns the number of events written. Callable repeatedly.
    ///
    /// # Errors
    ///
    /// Decode or I/O failures surface as [`FleetError::Export`].
    pub fn write_trace_jsonl<W: io::Write>(&self, out: &mut W) -> Result<u64, FleetError> {
        let mut merge = self.spill.merge()?;
        Ok(hide_obs::export::stream_jsonl(&mut merge, out)?)
    }

    /// Streams the merged trace in Chrome trace format into `out` (see
    /// [`hide_obs::export::to_chrome_trace`] for the `stages` caveat).
    /// Returns the number of simulation events written. Callable
    /// repeatedly.
    ///
    /// # Errors
    ///
    /// Decode or I/O failures surface as [`FleetError::Export`].
    pub fn write_chrome_trace<W: io::Write>(
        &self,
        stages: Option<&Recorder>,
        out: &mut W,
    ) -> Result<u64, FleetError> {
        let mut merge = self.spill.merge()?;
        Ok(hide_obs::export::stream_chrome_trace(
            &mut merge, stages, out,
        )?)
    }

    /// Deletes the spill file. Call when every export has been
    /// written; dropping the result does *not* remove it (callers may
    /// want the file for post-hoc analysis).
    ///
    /// # Errors
    ///
    /// Filesystem failure surfaces as [`FleetError::Export`].
    pub fn cleanup(&self) -> Result<(), FleetError> {
        std::fs::remove_file(&self.spill.path).map_err(export_err)
    }
}

/// Aggregated outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Field-wise sum of every BSS's tallies.
    pub report: BssReport,
    /// Fleet-wide fractional energy saving vs the receive-all baseline.
    pub fleet_saving: f64,
    /// Missed wakeups over useful opportunities (0 when no opportunity
    /// arose). The loss-free invariant: this is exactly 0 when
    /// `refresh_loss` is 0.
    pub missed_wakeup_rate: f64,
    /// Spurious wakeups over HIDE wakeups (0 when none occurred).
    pub spurious_wakeup_rate: f64,
    /// Share of total fleet airtime consumed by UDP Port Messages
    /// (Eq. 21): refresh airtime over `duration × bss_count`.
    pub port_message_airtime_share: f64,
    /// The wake policy the fleet ran.
    pub policy: WakePolicy,
    /// Battery-lifetime projection for the configured battery: the
    /// policy's average per-client draw extrapolated to standby
    /// seconds, against the receive-all baseline.
    pub lifetime: LifetimeProjection,
    /// Merged observability recorder (counters, histograms, stages).
    pub recorder: Recorder,
}

impl FleetResult {
    fn assemble(cfg: &FleetConfig, report: BssReport, recorder: Recorder) -> Self {
        let ratio = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        let fleet_saving = if report.baseline_energy_j > 0.0 {
            1.0 - report.total_energy_j / report.baseline_energy_j
        } else {
            0.0
        };
        let clients = (cfg.bss_count * cfg.clients_per_bss) as u64;
        let lifetime = if report.total_energy_j > 0.0 && report.baseline_energy_j > 0.0 {
            LifetimeProjection::project(
                &cfg.battery,
                report.total_energy_j,
                report.baseline_energy_j,
                cfg.duration_secs,
                clients,
            )
        } else {
            // A horizon too short for any charge projects nothing.
            LifetimeProjection {
                capacity_mwh: (cfg.battery.capacity_wh() * 1e3).round() as u64,
                clients,
                avg_draw_uw: 0,
                projected_secs: 0,
                baseline_secs: 0,
                lifetime_gain_ppm: 0,
            }
        };
        FleetResult {
            fleet_saving,
            policy: cfg.policy,
            lifetime,
            missed_wakeup_rate: ratio(report.missed_wakeups, report.useful_opportunities),
            spurious_wakeup_rate: ratio(report.spurious_wakeups, report.hide_wakeups),
            port_message_airtime_share: report.refresh_airtime_secs
                / (cfg.duration_secs * cfg.bss_count as f64),
            report,
            recorder,
        }
    }

    /// The merged `hide-metrics/1` JSON document. Byte-identical across
    /// reruns and `jobs` counts (wall-clock spans are excluded by the
    /// schema).
    pub fn metrics_json(&self) -> String {
        self.recorder.to_json()
    }

    /// The merged per-client energy ledger (integer nanojoules, keyed
    /// by `(bss_index, aid)`), fanned in from the shards in input
    /// order.
    pub fn attribution(&self) -> &hide_energy::AttributionLedger {
        &self.report.attribution
    }

    /// The `policy` section body for the `hide-metrics/1` artifact:
    /// which policy ran (`kind`: 0 = hide, 1 = psm, 2 = scheduled),
    /// its schedule knobs (0/0 when no schedule), and the
    /// scheduled-wake tallies. Integer-only, single line.
    pub fn policy_metrics_section(&self) -> String {
        let (interval, period) = self
            .policy
            .schedule()
            .map_or((0, 0), |s| (s.interval_dtims, s.period_dtims));
        format!(
            "{{\"kind\":{},\"interval_dtims\":{},\"period_dtims\":{},\"scheduled_wakes\":{},\"deferred_wakeups\":{}}}",
            self.policy.kind_id(),
            interval,
            period,
            self.report.scheduled_wakes,
            self.report.deferred_wakeups
        )
    }

    /// [`metrics_json`](Self::metrics_json) with the fleet-wide
    /// `"energy"` attribution, `"policy"`, and `"battery"` lifetime
    /// sections spliced in — still integer-only and byte-identical
    /// across reruns and `jobs` counts.
    pub fn metrics_json_with_energy(&self) -> String {
        let energy = self.report.attribution.to_metrics_section();
        let policy = self.policy_metrics_section();
        let battery = self.lifetime.to_metrics_section();
        self.recorder.to_json_with_sections(&[
            ("energy", &energy),
            ("policy", &policy),
            ("battery", &battery),
        ])
    }

    /// A small deterministic JSON document with the derived fleet
    /// scalars (energy, rates, Eq. 21 share). Formatted with fixed
    /// precision so it is byte-stable too.
    pub fn summary_json(&self) -> String {
        let r = &self.report;
        format!(
            concat!(
                "{{\"schema\":\"hide-fleet-summary/1\",",
                "\"total_energy_j\":{:.9},",
                "\"baseline_energy_j\":{:.9},",
                "\"fleet_saving\":{:.9},",
                "\"missed_wakeup_rate\":{:.9},",
                "\"spurious_wakeup_rate\":{:.9},",
                "\"port_message_airtime_share\":{:.9},",
                "\"refresh_airtime_secs\":{:.9},",
                "\"events\":{},\"frames\":{},",
                "\"associations\":{},\"disassociations\":{},",
                "\"refreshes_sent\":{},\"refreshes_lost\":{},",
                "\"entries_expired\":{},\"wakeups\":{},",
                "\"missed_wakeups\":{},\"spurious_wakeups\":{}}}"
            ),
            r.total_energy_j,
            r.baseline_energy_j,
            self.fleet_saving,
            self.missed_wakeup_rate,
            self.spurious_wakeup_rate,
            self.port_message_airtime_share,
            r.refresh_airtime_secs,
            r.events,
            r.frames,
            r.associations,
            r.disassociations,
            r.refreshes_sent,
            r.refreshes_lost,
            r.entries_expired,
            r.wakeups,
            r.missed_wakeups,
            r.spurious_wakeups,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetConfig {
        FleetConfig {
            bss_count: 6,
            clients_per_bss: 8,
            duration_secs: 12.0,
            churn: ChurnConfig {
                mean_present_secs: 20.0,
                mean_absent_secs: 5.0,
                mean_active_secs: 3.0,
                mean_suspended_secs: 8.0,
                refresh_interval_secs: 2.0,
                stale_timeout_secs: 7.0,
                port_churn: 0.3,
                ..ChurnConfig::default()
            },
            ..FleetConfig::default()
        }
    }

    #[test]
    fn validation_catches_bad_configs() {
        let ok = FleetConfig::default();
        assert!(ok.validate().is_ok());
        let c = FleetConfig {
            bss_count: 0,
            ..ok.clone()
        };
        assert_eq!(c.validate(), Err(FleetError::NoBsses));
        let c = FleetConfig {
            clients_per_bss: 0,
            ..ok.clone()
        };
        assert_eq!(c.validate(), Err(FleetError::NoClients));
        let c = FleetConfig {
            duration_secs: 0.0,
            ..ok.clone()
        };
        assert_eq!(c.validate(), Err(FleetError::InvalidDuration(0.0)));
        let c = FleetConfig {
            adoption: f64::NAN,
            ..ok
        };
        assert!(matches!(
            c.validate(),
            Err(FleetError::InvalidProbability {
                what: "adoption",
                ..
            })
        ));
    }

    #[test]
    fn jobs_count_does_not_change_output() {
        let cfg = small();
        let serial = cfg.try_run_with_jobs(1).unwrap();
        let parallel = cfg.try_run_with_jobs(4).unwrap();
        assert_eq!(serial.metrics_json(), parallel.metrics_json());
        assert_eq!(serial.summary_json(), parallel.summary_json());
        assert_eq!(serial.report, parallel.report);
        // The attribution ledger merges shard-by-shard in input order,
        // so its exports are byte-identical too.
        assert_eq!(
            serial.metrics_json_with_energy(),
            parallel.metrics_json_with_energy()
        );
        assert_eq!(
            serial.attribution().to_csv(),
            parallel.attribution().to_csv()
        );
        assert_eq!(
            serial.attribution().to_jsonl(),
            parallel.attribution().to_jsonl()
        );
    }

    #[test]
    fn attributed_energy_matches_aggregate() {
        let result = small().try_run_with_jobs(2).unwrap();
        let ledger = result.attribution();
        assert!(!ledger.is_empty());
        let spent_j = ledger.spent_nj() as f64 / 1e9;
        let total = result.report.total_energy_j;
        assert!(
            (spent_j - total).abs() / total < 1e-5,
            "ledger {spent_j} vs aggregate {total}"
        );
        // The spliced artifact still parses as balanced integer-only JSON.
        let json = result.metrics_json_with_energy();
        assert!(json.contains("\"energy\": {\"clients\":"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn traced_attribution_wake_columns_match_trace_join() {
        // Engine-online charging and the provenance trace join price
        // wakes with the same pre-rounded integers, so the wake columns
        // agree exactly (radio columns are invisible to the trace).
        let mut cfg = small();
        cfg.churn.refresh_loss = 0.4;
        let (result, flight) = cfg.try_run_traced_with_jobs(2, 1 << 16).unwrap();
        let counts = hide_obs::provenance::per_client(&flight);
        let priced = hide_energy::AttributionLedger::price(&counts, &cfg.profile);
        assert!(result.attribution().wake_columns_eq(&priced));
    }

    #[test]
    fn lossless_refresh_never_misses_wakeups() {
        let mut cfg = small();
        cfg.churn.refresh_loss = 0.0;
        let result = cfg.try_run_with_jobs(2).unwrap();
        assert_eq!(result.report.missed_wakeups, 0);
        assert_eq!(result.missed_wakeup_rate, 0.0);
        assert!(result.report.useful_opportunities > 0);
    }

    #[test]
    fn lossy_refresh_eventually_misses() {
        let mut cfg = small();
        cfg.bss_count = 12;
        cfg.duration_secs = 20.0;
        cfg.churn.refresh_loss = 0.6;
        cfg.churn.refresh_interval_secs = 3.0;
        cfg.churn.stale_timeout_secs = 4.0;
        let result = cfg.try_run_with_jobs(2).unwrap();
        assert!(result.report.refreshes_lost > 0);
        assert!(result.report.missed_wakeups > 0);
        assert!(result.missed_wakeup_rate > 0.0);
    }

    #[test]
    fn hide_adoption_saves_energy() {
        let cfg = FleetConfig {
            adoption: 1.0,
            ..small()
        };
        let result = cfg.try_run().unwrap();
        assert!(result.report.total_energy_j < result.report.baseline_energy_j);
        assert!(result.fleet_saving > 0.0 && result.fleet_saving < 1.0);
        assert!(result.port_message_airtime_share > 0.0);
        assert!(result.port_message_airtime_share < 0.05);
    }

    #[test]
    fn streamed_run_matches_in_memory_exports_byte_for_byte() {
        let mut cfg = small();
        cfg.churn.refresh_loss = 0.3;
        let capacity = 1 << 14;
        let (mem, flight) = cfg.try_run_traced_with_jobs(2, capacity).unwrap();

        let dir = std::env::temp_dir().join(format!("hide-stream-unit-{}", std::process::id()));
        let mut stream = StreamExportConfig::new(&dir);
        stream.trace_capacity = capacity;
        stream.window = 2; // force several runs
        stream.chunk_events = 3; // force many chunks per run
        let mut csv = Vec::new();
        let mut jsonl = Vec::new();
        let streamed = cfg
            .try_run_streamed_with_jobs(
                3,
                &stream,
                StreamSinks {
                    attribution_csv: Some(&mut csv),
                    attribution_jsonl: Some(&mut jsonl),
                },
            )
            .unwrap();

        // Attribution lanes: streamed concatenation == merged ledger.
        assert_eq!(csv, mem.attribution().to_csv().into_bytes());
        assert_eq!(jsonl, mem.attribution().to_jsonl().into_bytes());

        // Trace exports: k-way merge over spilled runs == tree fold.
        let mut out = Vec::new();
        streamed.write_trace_jsonl(&mut out).unwrap();
        assert_eq!(out, hide_obs::export::to_jsonl(&flight).into_bytes());
        let mut out = Vec::new();
        streamed.write_chrome_trace(None, &mut out).unwrap();
        assert_eq!(
            out,
            hide_obs::export::to_chrome_trace(&flight, None).into_bytes()
        );

        // Metrics and scalars: identical artifact, identical drops.
        assert_eq!(
            streamed.metrics_json_with_energy(),
            mem.metrics_json_with_energy()
        );
        assert_eq!(streamed.result.summary_json(), mem.summary_json());
        assert_eq!(streamed.dropped(), flight.dropped());
        assert_eq!(streamed.events(), flight.len() as u64);
        assert!(streamed.result.report.attribution.is_empty());

        streamed.cleanup().unwrap();
        assert!(!streamed.spill.path.exists());
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn summary_json_is_well_formed() {
        let result = small().try_run_with_jobs(1).unwrap();
        let json = result.summary_json();
        assert!(json.starts_with("{\"schema\":\"hide-fleet-summary/1\""));
        assert!(json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
