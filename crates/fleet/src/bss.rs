//! One BSS under the discrete-event kernel: an AP, a churning client
//! population, a streaming broadcast source, and the DTIM delivery
//! loop.
//!
//! The engine keeps **two** port tables: the AP's real
//! [`ClientPortTable`] (updated only by UDP Port Messages that actually
//! arrive, aged by the stale timeout) and a *ground-truth* table of
//! what each client really listens on right now. At every DTIM the two
//! are compared per suspended HIDE client: flagged-and-useful is a
//! proper wakeup, useful-but-unflagged is a **missed wakeup** (a lost
//! or expired refresh hid traffic the client wanted), and
//! flagged-but-useless is a **spurious wakeup** (the AP woke the client
//! on stale interests). With zero refresh loss the two tables are
//! updated atomically at the same events, so both failure counts are
//! provably zero — the invariant the tier-1 tests pin down.
//!
//! # Hot-path layout
//!
//! The DTIM sweep visits every client of the BSS a hundred times a
//! simulated second, so the population is stored **struct-of-arrays**
//! (`Clients`): the sweep touches only the three hot columns (AID,
//! suspended, HIDE flag) as dense parallel vectors instead of striding
//! over per-client RNG state and port lists. Wake flags are computed
//! **batched** before the sweep — one sorted-postings scan per burst
//! port scatters "first flagged/useful port" marks onto client slots
//! (the same postings idiom the port table itself uses) — and the
//! `τ_lp` lookup tallies of the per-client short-circuit scan this
//! replaced are reconstructed exactly from a presence prefix-sum, so
//! the metrics artifact is unchanged byte-for-byte. Energy charges go
//! to dense per-AID lanes and materialize into the sorted
//! [`AttributionLedger`] once, at the end of the run.

use crate::error::FleetError;
use crate::fleet::FleetConfig;
use crate::kernel::{derive_seed, EventQueue};
use crate::profile::{FleetStage, NoopProfiler, StageProfiler};
use hide_core::ap::{AccessPoint, ApCtx, ClientPortTable};
use hide_core::error::CoreError;
use hide_energy::attribution::{joules_to_nj, AttributionLedger, ClientEnergy, WakePricing};
use hide_obs::{
    Counter, Distribution, MetricsSink, NoopTrace, Recorder, Stage, TraceEventKind, TraceSink,
    WakeCause, WakeClass,
};
use hide_traces::record::TraceFrame;
use hide_traces::stream::FrameStream;
use hide_wifi::assoc::{AssociationRequest, Disassociation};
use hide_wifi::frame::UdpPortMessage;
use hide_wifi::mac::{Aid, MacAddr, MAX_AID};
use hide_wifi::phy::{self, DataRate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SSID every fleet BSS advertises.
const SSID: &str = "hide-fleet";

/// Sentinel in [`Engine::aid_slot`]: no client currently holds the AID.
const NO_SLOT: u32 = u32::MAX;

/// Sentinel in the per-DTIM flag columns: no burst port matched.
const NO_PORT_IDX: u32 = u32::MAX;

/// Deterministic tallies from one BSS run. Aggregated across the fleet
/// by field-wise addition ([`BssReport::merge_from`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BssReport {
    /// Kernel events processed within the horizon.
    pub events: u64,
    /// Broadcast frames drawn from the trace stream.
    pub frames: u64,
    /// Successful association exchanges.
    pub associations: u64,
    /// Disassociations (clients leaving).
    pub disassociations: u64,
    /// UDP Port Message refreshes transmitted by clients.
    pub refreshes_sent: u64,
    /// Refreshes lost before reaching the AP.
    pub refreshes_lost: u64,
    /// Port-table `(port, client)` entries aged out by the AP.
    pub entries_expired: u64,
    /// Suspended clients woken at a DTIM (legacy + HIDE).
    pub wakeups: u64,
    /// Wakeups of suspended HIDE clients specifically.
    pub hide_wakeups: u64,
    /// DTIMs where a suspended HIDE client had useful traffic but was
    /// not flagged (stale/lost refresh hid it).
    pub missed_wakeups: u64,
    /// DTIMs where a suspended HIDE client was flagged for traffic it
    /// no longer wanted.
    pub spurious_wakeups: u64,
    /// DTIMs where a suspended HIDE client had useful traffic at all
    /// (the denominator of the missed-wakeup rate).
    pub useful_opportunities: u64,
    /// Wake-ups of scheduled-wake clients inside their service window.
    pub scheduled_wakes: u64,
    /// Useful bursts a scheduled client deep-slept through because they
    /// fell outside its service window. Deferred, not missed: the AP
    /// still holds the traffic for the next window.
    pub deferred_wakeups: u64,
    /// Energy actually spent by the population, joules.
    pub total_energy_j: f64,
    /// Energy the same population would spend all-legacy (receive-all),
    /// joules.
    pub baseline_energy_j: f64,
    /// Airtime consumed by UDP Port Messages, seconds (Eq. 21
    /// numerator).
    pub refresh_airtime_secs: f64,
    /// Per-client, per-cause energy ledger (integer nanojoules), keyed
    /// by `(bss_index, aid)`. Mirrors every charge made into
    /// [`BssReport::total_energy_j`] plus the counterfactual
    /// forgone-suspend cost of missed wakeups.
    pub attribution: AttributionLedger,
}

impl BssReport {
    /// Adds `other`'s tallies into `self`. Field-wise addition, so
    /// folding shards in input order is deterministic.
    pub fn merge_from(&mut self, other: &BssReport) {
        self.events += other.events;
        self.frames += other.frames;
        self.associations += other.associations;
        self.disassociations += other.disassociations;
        self.refreshes_sent += other.refreshes_sent;
        self.refreshes_lost += other.refreshes_lost;
        self.entries_expired += other.entries_expired;
        self.wakeups += other.wakeups;
        self.hide_wakeups += other.hide_wakeups;
        self.missed_wakeups += other.missed_wakeups;
        self.spurious_wakeups += other.spurious_wakeups;
        self.useful_opportunities += other.useful_opportunities;
        self.scheduled_wakes += other.scheduled_wakes;
        self.deferred_wakeups += other.deferred_wakeups;
        self.total_energy_j += other.total_energy_j;
        self.baseline_energy_j += other.baseline_energy_j;
        self.refresh_airtime_secs += other.refresh_airtime_secs;
        self.attribution.merge_from(&other.attribution);
    }
}

/// Everything the kernel can schedule in a BSS.
#[derive(Debug, Clone)]
enum Event {
    /// DTIM boundary: age the table, evaluate the buffered burst.
    Dtim,
    /// A broadcast frame hits the air (pulled lazily from the stream).
    Arrival(TraceFrame),
    /// Client (re)joins the BSS.
    Join { client: usize, epoch: u64 },
    /// Client leaves the BSS.
    Leave { client: usize, epoch: u64 },
    /// Periodic UDP Port Message refresh.
    Refresh { client: usize, epoch: u64 },
    /// Client's screen goes off; it enters power-save.
    Suspend { client: usize, epoch: u64 },
    /// User wakes the device; radio stays awake.
    Resume { client: usize, epoch: u64 },
}

/// Live state of the client population, struct-of-arrays: one slot per
/// client, parallel columns. The per-DTIM sweep reads only `aids`,
/// `suspended` and `hide` — three dense vectors — while the cold
/// columns (RNGs, port lists) stay out of its cache footprint.
#[derive(Debug)]
struct Clients {
    macs: Vec<MacAddr>,
    hide: Vec<bool>,
    /// Ground-truth listened-on ports right now.
    ports: Vec<Vec<u16>>,
    /// Assigned AID while associated.
    aids: Vec<Option<Aid>>,
    /// Bumped on every leave; events carrying an older epoch are stale
    /// and dropped, which cancels the previous presence period's timers
    /// without searching the queue.
    epochs: Vec<u64>,
    suspended: Vec<bool>,
    /// The most recent event that de-synchronized the AP's view of this
    /// client from ground truth (lost refresh, expiry, churn); cleared
    /// whenever a refresh is applied or the client (re)joins. This is
    /// the online form of the provenance analyzer's backward walk: at a
    /// missed wakeup the nearest de-sync event *is* the cause.
    last_desync: Vec<Option<WakeCause>>,
    /// Whether the client has re-sampled its ports since the AP last
    /// heard from it — the only way a *spurious* wake can arise.
    churned_since_sync: Vec<bool>,
    /// Memoized UDP Port Message for the slot's current port set —
    /// rebuilt only when `ports` are re-sampled (the message depends
    /// only on the slot's fixed MAC and its ports), so steady-state
    /// refreshes transmit without reconstructing the frame.
    msgs: Vec<Option<UdpPortMessage>>,
    rngs: Vec<StdRng>,
}

impl Clients {
    fn with_capacity(n: usize) -> Self {
        Clients {
            macs: Vec::with_capacity(n),
            hide: Vec::with_capacity(n),
            ports: Vec::with_capacity(n),
            aids: Vec::with_capacity(n),
            epochs: Vec::with_capacity(n),
            suspended: Vec::with_capacity(n),
            last_desync: Vec::with_capacity(n),
            churned_since_sync: Vec::with_capacity(n),
            msgs: Vec::with_capacity(n),
            rngs: Vec::with_capacity(n),
        }
    }

    fn push(&mut self, mac: MacAddr, hide: bool, ports: Vec<u16>, rng: StdRng) {
        self.macs.push(mac);
        self.hide.push(hide);
        self.ports.push(ports);
        self.aids.push(None);
        self.epochs.push(0);
        self.suspended.push(false);
        self.last_desync.push(None);
        self.churned_since_sync.push(false);
        self.msgs.push(None);
        self.rngs.push(rng);
    }

    fn len(&self) -> usize {
        self.macs.len()
    }
}

/// Draws an exponential variate with the given mean.
fn exp(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Samples `k` distinct ports from the scenario's (deduplicated,
/// sorted) port universe.
fn sample_ports(rng: &mut StdRng, universe: &[u16], k: usize) -> Vec<u16> {
    let k = k.min(universe.len());
    let mut chosen: Vec<u16> = Vec::with_capacity(k);
    while chosen.len() < k {
        let p = universe[rng.gen_range(0..universe.len())];
        if !chosen.contains(&p) {
            chosen.push(p);
        }
    }
    chosen
}

/// Metrics counter for a missed wakeup with the given cause.
fn missed_cause_counter(cause: WakeCause) -> Counter {
    match cause {
        WakeCause::RefreshLost => Counter::FleetMissedRefreshLost,
        WakeCause::EntryExpired => Counter::FleetMissedEntryExpired,
        WakeCause::PortChurn => Counter::FleetMissedPortChurn,
        WakeCause::Proper | WakeCause::Unknown => Counter::FleetMissedUnknown,
    }
}

/// Metrics counter for a spurious wakeup with the given cause. A
/// spurious wake needs the AP to believe in ports the client left, so
/// port churn is the only attributable cause.
fn spurious_cause_counter(cause: WakeCause) -> Counter {
    match cause {
        WakeCause::PortChurn => Counter::FleetSpuriousPortChurn,
        _ => Counter::FleetSpuriousUnknown,
    }
}

/// The single-BSS discrete-event engine.
struct Engine<'a> {
    cfg: &'a FleetConfig,
    bssid: MacAddr,
    ap: AccessPoint,
    /// Ground truth of every associated client's current ports.
    truth: ClientPortTable,
    clients: Clients,
    /// AID value → client slot currently holding it ([`NO_SLOT`] when
    /// free). Inverse of `clients.aids`, maintained at join/leave, so
    /// postings scans and expiry reports resolve AIDs in O(1) instead
    /// of a linear search over the population.
    aid_slot: Vec<u32>,
    queue: EventQueue<Event>,
    stream: FrameStream,
    /// Buffered broadcast burst, each frame tagged with a per-shard id
    /// (1-based; 0 means "no frame") so wake decisions can cite the
    /// frame that caused them.
    buffered: Vec<(u64, TraceFrame)>,
    next_frame_id: u64,
    port_universe: Vec<u16>,
    report: BssReport,
    /// Dense per-AID energy lanes plus touched marks, grown on first
    /// charge; materialized into `report.attribution` at the end of
    /// the run ([`AttributionLedger::from_sorted_rows`]), replacing a
    /// binary-search ledger insert per charge with an array write.
    lanes: Vec<ClientEnergy>,
    lane_touched: Vec<bool>,
    /// Per-DTIM scratch, reused across boundaries: for each client
    /// slot, the index into the sorted burst-port list of the first
    /// port the AP flags it on / the first port it truly listens on
    /// ([`NO_PORT_IDX`] when none).
    flagged_first: Vec<u32>,
    useful_first: Vec<u32>,
    /// Per-DTIM scratch: `present_prefix[j]` = how many of the first
    /// `j` burst ports exist in the AP table — the prefix-sum that
    /// reconstructs exact `τ_lp` hit/miss tallies for the batched
    /// sweep.
    present_prefix: Vec<u32>,
    /// `E_rm + E_sp` plus the wakelock tail, charged per wakeup.
    wake_cost_j: f64,
    /// The same wake prices pre-rounded to integer nanojoules, charged
    /// into the per-client ledger so engine-online attribution equals a
    /// trace-join (`count × price`) bit-for-bit.
    pricing: WakePricing,
    /// This shard's trace-source lane (the BSS index), the first half of
    /// every ledger key.
    source: u32,
    /// Negotiated wake schedule as `(interval, period)` DTIM counts —
    /// `Some` only under [`hide_policy::WakePolicy::ScheduledWake`].
    /// `None` keeps the per-client sweep on the exact pre-seam
    /// instruction sequence.
    sched: Option<(u64, u64)>,
    /// 0-based index of the next DTIM boundary, the schedule's clock.
    dtim_index: u64,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a FleetConfig, bss_index: usize) -> Self {
        let seed = derive_seed(cfg.seed, bss_index as u64);
        let specs =
            hide_sim::network::fleet(cfg.clients_per_bss, cfg.adoption, derive_seed(seed, 1));
        let bssid = MacAddr::station(0);
        let mut ap = AccessPoint::new(bssid);
        ap.set_ssid(SSID);

        let mut port_universe = cfg.scenario.params().port_mix.ports();
        port_universe.sort_unstable();
        port_universe.dedup();

        let churn = &cfg.churn;
        let mut queue = EventQueue::with_seed(derive_seed(seed, 3));
        let stagger = cfg.duration_secs.min(churn.mean_absent_secs);
        let mut clients = Clients::with_capacity(specs.len());
        // Under non-HIDE policies every client associates legacy: no
        // port refreshes, no BTIM flags. The RNG draws are untouched
        // (the flag gates only protocol behavior), so a HIDE run's
        // event sequence is bit-identical to the pre-seam engine's.
        let hide_protocol = cfg.policy.uses_port_refresh();
        for (i, spec) in specs.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(derive_seed(spec.seed, 0x51ED));
            let ports = sample_ports(&mut rng, &port_universe, churn.ports_per_client);
            let join_at = rng.gen_range(0.0..stagger);
            queue.schedule(
                join_at,
                Event::Join {
                    client: i,
                    epoch: 0,
                },
            );
            clients.push(
                MacAddr::station(i as u32 + 1),
                spec.hide_enabled && hide_protocol,
                ports,
                rng,
            );
        }

        let mut stream = FrameStream::new(
            &cfg.scenario.params(),
            cfg.duration_secs,
            derive_seed(seed, 2),
        );
        if let Some(frame) = stream.next() {
            queue.schedule(frame.time, Event::Arrival(frame));
        }
        queue.schedule(Self::dtim_interval(), Event::Dtim);

        let profile = &cfg.profile;
        let wake_cost_j =
            profile.wake_cycle_energy() + profile.wakelock_secs * profile.active_idle_power;
        let pricing = WakePricing::from_profile(profile);

        Engine {
            cfg,
            bssid,
            ap,
            truth: ClientPortTable::new(),
            clients,
            aid_slot: vec![NO_SLOT; MAX_AID as usize + 1],
            queue,
            stream,
            buffered: Vec::new(),
            next_frame_id: 1,
            port_universe,
            report: BssReport::default(),
            lanes: Vec::new(),
            lane_touched: Vec::new(),
            flagged_first: Vec::new(),
            useful_first: Vec::new(),
            present_prefix: Vec::new(),
            wake_cost_j,
            pricing,
            source: bss_index as u32,
            sched: cfg
                .policy
                .schedule()
                .map(|s| (u64::from(s.interval_dtims), u64::from(s.period_dtims))),
            dtim_index: 0,
        }
    }

    /// Paper-default DTIM spacing: 102.4 ms beacons, DTIM period 1.
    fn dtim_interval() -> f64 {
        hide_wifi::timing::TIME_UNIT_SECS * 100.0
    }

    /// Dense energy lane for `aid`, grown and marked touched on first
    /// charge. Touch marks delimit exactly the lanes the sorted-ledger
    /// `entry` API would have created.
    #[inline]
    fn lane(&mut self, aid: Aid) -> &mut ClientEnergy {
        let v = aid.value() as usize;
        if self.lanes.len() <= v {
            self.lanes.resize(v + 1, ClientEnergy::default());
            self.lane_touched.resize(v + 1, false);
        }
        self.lane_touched[v] = true;
        &mut self.lanes[v]
    }

    /// Re-syncs the truth table and transmits a UDP Port Message,
    /// possibly re-sampling ports (port churn) and possibly losing the
    /// message on the way to the AP. Tx energy is charged either way —
    /// the client cannot know the message was lost.
    fn refresh<T: TraceSink>(
        &mut self,
        i: usize,
        aid: Aid,
        now: f64,
        trace: &mut T,
    ) -> Result<(), FleetError> {
        let churn = &self.cfg.churn;
        if churn.port_churn > 0.0 && self.clients.rngs[i].gen_bool(churn.port_churn) {
            self.clients.ports[i] = sample_ports(
                &mut self.clients.rngs[i],
                &self.port_universe,
                churn.ports_per_client,
            );
            self.clients.msgs[i] = None;
            self.clients.churned_since_sync[i] = true;
            self.clients.last_desync[i] = Some(WakeCause::PortChurn);
            if trace.is_enabled() {
                trace.emit(now, TraceEventKind::PortChurn { aid: aid.value() });
            }
        }
        self.truth.update_client(aid, &self.clients.ports[i]);
        if self.clients.msgs[i].is_none() {
            self.clients.msgs[i] = Some(
                UdpPortMessage::new(
                    self.clients.macs[i],
                    self.bssid,
                    self.clients.ports[i].iter().copied(),
                )
                .map_err(|e| FleetError::Core(CoreError::from(e)))?,
            );
        }
        let len_bytes = self.clients.msgs[i]
            .as_ref()
            .expect("memoized above")
            .len_bytes();
        let airtime = phy::airtime_of_total_bytes(len_bytes, DataRate::R1M);
        self.report.refreshes_sent += 1;
        self.report.refresh_airtime_secs += airtime;
        self.report.total_energy_j += airtime * self.cfg.profile.tx_power;
        self.lane(aid).refresh_tx_nj += joules_to_nj(airtime * self.cfg.profile.tx_power);
        let lost = churn.refresh_loss > 0.0 && self.clients.rngs[i].gen_bool(churn.refresh_loss);
        if lost {
            self.report.refreshes_lost += 1;
            self.clients.last_desync[i] = Some(WakeCause::RefreshLost);
            if trace.is_enabled() {
                trace.emit(now, TraceEventKind::RefreshLost { aid: aid.value() });
            }
        } else {
            let msg = self.clients.msgs[i].as_ref().expect("memoized above");
            self.ap.process_port_message(msg, &mut ApCtx::at(now))?;
            self.clients.last_desync[i] = None;
            self.clients.churned_since_sync[i] = false;
            if trace.is_enabled() {
                trace.emit(now, TraceEventKind::RefreshApplied { aid: aid.value() });
            }
        }
        Ok(())
    }

    fn handle_join<T: TraceSink>(
        &mut self,
        i: usize,
        epoch: u64,
        now: f64,
        trace: &mut T,
    ) -> Result<(), FleetError> {
        let churn = &self.cfg.churn;
        if epoch != self.clients.epochs[i] {
            return Ok(());
        }
        let mut request = AssociationRequest::new(self.clients.macs[i], self.bssid, SSID);
        if self.clients.hide[i] {
            request = request.with_hide_support();
        }
        let response = self.ap.handle_association_request(&request);
        let Some(aid) = response.aid() else {
            // AID space exhausted; retry after another absent dwell.
            let delay = exp(&mut self.clients.rngs[i], churn.mean_absent_secs);
            self.queue
                .schedule(now + delay, Event::Join { client: i, epoch });
            return Ok(());
        };
        self.clients.aids[i] = Some(aid);
        self.aid_slot[aid.value() as usize] = i as u32;
        self.clients.suspended[i] = false;
        // A (re)join is a provenance sync point: the AP starts from a
        // clean slate for this AID.
        self.clients.last_desync[i] = None;
        self.clients.churned_since_sync[i] = false;
        self.report.associations += 1;
        self.truth.update_client(aid, &self.clients.ports[i]);
        if trace.is_enabled() {
            trace.emit(
                now,
                TraceEventKind::Join {
                    aid: aid.value(),
                    hide: self.clients.hide[i],
                },
            );
        }

        let active_dwell = exp(&mut self.clients.rngs[i], churn.mean_active_secs);
        let present_dwell = exp(&mut self.clients.rngs[i], churn.mean_present_secs);
        if self.clients.hide[i] {
            // First refresh rides along with association, so a loss-free
            // run never has an associated-but-unknown HIDE client.
            self.refresh(i, aid, now, trace)?;
            self.queue.schedule(
                now + churn.refresh_interval_secs,
                Event::Refresh { client: i, epoch },
            );
        }
        self.queue
            .schedule(now + active_dwell, Event::Suspend { client: i, epoch });
        self.queue
            .schedule(now + present_dwell, Event::Leave { client: i, epoch });
        Ok(())
    }

    fn handle_leave<T: TraceSink>(
        &mut self,
        i: usize,
        epoch: u64,
        now: f64,
        trace: &mut T,
    ) -> Result<(), FleetError> {
        if epoch != self.clients.epochs[i] {
            return Ok(());
        }
        let Some(aid) = self.clients.aids[i] else {
            return Ok(());
        };
        if trace.is_enabled() {
            trace.emit(now, TraceEventKind::Leave { aid: aid.value() });
        }
        self.truth.remove_client(aid);
        let notice = Disassociation::new(
            self.clients.macs[i],
            self.bssid,
            Disassociation::REASON_LEAVING,
        );
        self.ap.handle_disassociation(&notice)?;
        self.clients.aids[i] = None;
        self.aid_slot[aid.value() as usize] = NO_SLOT;
        self.clients.epochs[i] += 1;
        let epoch = self.clients.epochs[i];
        self.report.disassociations += 1;
        let absent_dwell = exp(&mut self.clients.rngs[i], self.cfg.churn.mean_absent_secs);
        self.queue
            .schedule(now + absent_dwell, Event::Join { client: i, epoch });
        Ok(())
    }

    fn handle_refresh<T: TraceSink>(
        &mut self,
        i: usize,
        epoch: u64,
        now: f64,
        trace: &mut T,
    ) -> Result<(), FleetError> {
        if epoch != self.clients.epochs[i] {
            return Ok(());
        }
        let Some(aid) = self.clients.aids[i] else {
            return Ok(());
        };
        self.refresh(i, aid, now, trace)?;
        self.queue.schedule(
            now + self.cfg.churn.refresh_interval_secs,
            Event::Refresh { client: i, epoch },
        );
        Ok(())
    }

    fn handle_suspend_resume(&mut self, i: usize, epoch: u64, now: f64, suspend: bool) {
        let churn = &self.cfg.churn;
        if epoch != self.clients.epochs[i] || self.clients.aids[i].is_none() {
            return;
        }
        self.clients.suspended[i] = suspend;
        if suspend {
            let dwell = exp(&mut self.clients.rngs[i], churn.mean_suspended_secs);
            self.queue
                .schedule(now + dwell, Event::Resume { client: i, epoch });
        } else {
            let dwell = exp(&mut self.clients.rngs[i], churn.mean_active_secs);
            self.queue
                .schedule(now + dwell, Event::Suspend { client: i, epoch });
        }
    }

    /// First id among the buffered frames destined to `port` (0 when
    /// none) — the frame a wake decision cites as its trigger.
    fn first_frame_on(&self, port: u16) -> u64 {
        self.buffered
            .iter()
            .find(|(_, f)| f.dst_port == port)
            .map(|(id, _)| *id)
            .unwrap_or(0)
    }

    /// The DTIM boundary: age the AP table, then resolve the buffered
    /// burst against every associated client, attributing every missed
    /// and spurious wakeup to its causal event online (the nearest
    /// de-sync recorded in the client state — equivalent to the
    /// analyzer's backward walk over the trace).
    fn handle_dtim<T: TraceSink>(&mut self, now: f64, rec: &mut Recorder, trace: &mut T) {
        let profile = &self.cfg.profile;
        // Whether a scheduled-wake client's service window covers this
        // DTIM. Policies without a schedule are always "in window".
        let in_window = self
            .sched
            .is_none_or(|(interval, period)| self.dtim_index % interval < period);
        self.dtim_index += 1;
        let expired = self
            .ap
            .expire_stale_port_entries(now - self.cfg.churn.stale_timeout_secs);
        self.report.entries_expired += expired.entries_removed;
        for &aid in &expired.clients {
            let slot = self.aid_slot[aid.value() as usize];
            if slot != NO_SLOT {
                self.clients.last_desync[slot as usize] = Some(WakeCause::EntryExpired);
            }
            if trace.is_enabled() {
                trace.emit(now, TraceEventKind::EntryExpired { aid: aid.value() });
            }
        }

        rec.observe(Distribution::FleetFramesPerDtim, self.buffered.len() as u64);
        rec.observe(
            Distribution::FleetPortOccupancy,
            self.ap.port_table().entry_count() as u64,
        );
        if trace.is_enabled() {
            trace.emit(
                now,
                TraceEventKind::DtimBoundary {
                    buffered: self.buffered.len() as u32,
                    table_entries: self.ap.port_table().entry_count() as u32,
                },
            );
        }

        // Empty-burst fast path: with nothing buffered the full sweep
        // below degenerates, bit-exactly, to charging each associated
        // client its beacon — every burst term adds `+0.0` to a
        // non-negative finite sum (an identity), every ledger burst add
        // is `+= 0`, the flag pass scans zero ports, and the τ_lp
        // charge is `(0, 0, 0)`. Most DTIMs in sparse scenarios take
        // this path, so the sweep cost tracks traffic, not time.
        if self.buffered.is_empty() {
            let beacon_nj = self.pricing.beacon_nj;
            let beacon_j = profile.beacon_energy;
            if self.sched.is_none() {
                // Accumulate the two sums in registers — the add sequence
                // is the one the general sweep performs, so the result is
                // bit-identical; only the per-iteration store is hoisted.
                let mut total = self.report.total_energy_j;
                let mut baseline = self.report.baseline_energy_j;
                let lanes = &mut self.lanes;
                let touched = &mut self.lane_touched;
                for &aid in &self.clients.aids {
                    let Some(aid) = aid else {
                        continue;
                    };
                    total += beacon_j;
                    baseline += beacon_j;
                    let v = aid.value() as usize;
                    if lanes.len() <= v {
                        lanes.resize(v + 1, ClientEnergy::default());
                        touched.resize(v + 1, false);
                    }
                    touched[v] = true;
                    lanes[v].beacon_nj += beacon_nj;
                }
                self.report.total_energy_j = total;
                self.report.baseline_energy_j = baseline;
            } else {
                // Scheduled wake: suspended clients outside the window
                // deep-sleep through the beacon (no charge); the
                // receive-all baseline still hears every one.
                for i in 0..self.clients.len() {
                    let Some(aid) = self.clients.aids[i] else {
                        continue;
                    };
                    self.report.baseline_energy_j += beacon_j;
                    if !self.clients.suspended[i] || in_window {
                        self.report.total_energy_j += beacon_j;
                        self.lane(aid).beacon_nj += beacon_nj;
                    }
                }
            }
            self.ap.port_table().charge_lookups(0, 0, 0);
            let next = now + Self::dtim_interval();
            if next < self.cfg.duration_secs {
                self.queue.schedule(next, Event::Dtim);
            }
            return;
        }

        let burst_rx_j: f64 = self
            .buffered
            .iter()
            .map(|(_, f)| f.airtime() * profile.rx_power)
            .sum();
        let mut ports: Vec<u16> = self.buffered.iter().map(|(_, f)| f.dst_port).collect();
        ports.sort_unstable();
        ports.dedup();
        let m = ports.len();

        // Batched flag pass: one postings scan per burst port scatters
        // "first flagged/useful port index" marks onto client slots —
        // the work the sweep below would otherwise redo as a per-client
        // × per-port lookup matrix.
        let n = self.clients.len();
        self.flagged_first.clear();
        self.flagged_first.resize(n, NO_PORT_IDX);
        self.useful_first.clear();
        self.useful_first.resize(n, NO_PORT_IDX);
        self.present_prefix.clear();
        self.present_prefix.push(0);
        for (j, &p) in ports.iter().enumerate() {
            let postings = self.ap.port_table().raw_postings(p);
            self.present_prefix
                .push(self.present_prefix[j] + postings.is_some() as u32);
            if let Some(postings) = postings {
                for &a in postings {
                    let slot = self.aid_slot[a.value() as usize];
                    if slot != NO_SLOT && self.flagged_first[slot as usize] == NO_PORT_IDX {
                        self.flagged_first[slot as usize] = j as u32;
                    }
                }
            }
            if let Some(postings) = self.truth.raw_postings(p) {
                for &a in postings {
                    let slot = self.aid_slot[a.value() as usize];
                    if slot != NO_SLOT && self.useful_first[slot as usize] == NO_PORT_IDX {
                        self.useful_first[slot as usize] = j as u32;
                    }
                }
            }
        }

        // Pre-rounded burst price: every client in this DTIM is charged
        // the same integer, keeping the ledger merge-exact.
        let burst_rx_nj = joules_to_nj(burst_rx_j);
        let pricing = self.pricing;
        let wake_cost_j = self.wake_cost_j;
        let beacon_j = profile.beacon_energy;
        let have_burst = !self.buffered.is_empty();
        let (mut lp_lookups, mut lp_hits) = (0u64, 0u64);
        for i in 0..n {
            let Some(aid) = self.clients.aids[i] else {
                continue;
            };
            // Every associated client receives the DTIM beacon — except
            // a suspended scheduled-wake client outside its service
            // window, which deep-sleeps through it. The receive-all
            // baseline hears every beacon regardless of policy.
            let receives_beacon = self.sched.is_none() || !self.clients.suspended[i] || in_window;
            if receives_beacon {
                self.report.total_energy_j += beacon_j;
                self.report.baseline_energy_j += beacon_j;
                self.lane(aid).beacon_nj += pricing.beacon_nj;
            } else {
                self.report.baseline_energy_j += beacon_j;
            }

            if !self.clients.suspended[i] {
                // Radio already awake: the burst is heard either way.
                self.report.total_energy_j += burst_rx_j;
                self.report.baseline_energy_j += burst_rx_j;
                self.lane(aid).burst_rx_nj += burst_rx_nj;
                continue;
            }
            if have_burst {
                // Receive-all baseline wakes for any buffered traffic.
                self.report.baseline_energy_j += wake_cost_j + burst_rx_j;
            }
            if !self.clients.hide[i] {
                if have_burst {
                    // A scheduled-wake client wakes only inside its
                    // service window; an out-of-window useful burst is
                    // deferred to the next window, never missed (the
                    // AP still holds it). Legacy PSM (and the legacy
                    // share of a HIDE fleet) wakes for any burst.
                    let wakes = match self.sched {
                        None => true,
                        Some(_) => in_window,
                    };
                    if wakes {
                        self.report.wakeups += 1;
                        if self.sched.is_some() {
                            self.report.scheduled_wakes += 1;
                            rec.incr(Counter::FleetScheduledWakes);
                        }
                        self.report.total_energy_j += wake_cost_j + burst_rx_j;
                        let e = self.lane(aid);
                        e.charge_wake(WakeClass::Legacy, WakeCause::Proper, &pricing);
                        e.burst_rx_nj += burst_rx_nj;
                        if trace.is_enabled() {
                            trace.emit(
                                now,
                                TraceEventKind::WakeDecision {
                                    aid: aid.value(),
                                    port: 0,
                                    frame_id: self.buffered.first().map(|(id, _)| *id).unwrap_or(0),
                                    class: WakeClass::Legacy,
                                    cause: WakeCause::Proper,
                                },
                            );
                        }
                    } else if self.useful_first[i] != NO_PORT_IDX {
                        self.report.deferred_wakeups += 1;
                        rec.incr(Counter::FleetDeferredWakeups);
                    }
                }
                continue;
            }
            // Reconstruct the τ_lp accounting of the short-circuiting
            // per-port scan this batched pass replaced: a client
            // flagged at port index j scanned j+1 ports (each hitting
            // iff present, the last always a hit); an unflagged client
            // scanned all m.
            let fj = self.flagged_first[i];
            let flagged_port = if fj != NO_PORT_IDX {
                lp_lookups += fj as u64 + 1;
                lp_hits += self.present_prefix[fj as usize] as u64 + 1;
                Some(ports[fj as usize])
            } else {
                lp_lookups += m as u64;
                lp_hits += self.present_prefix[m] as u64;
                None
            };
            let uj = self.useful_first[i];
            let useful_port = (uj != NO_PORT_IDX).then(|| ports[uj as usize]);
            let useful = useful_port.is_some();
            if useful {
                self.report.useful_opportunities += 1;
            }
            if let Some(port) = flagged_port {
                self.report.wakeups += 1;
                self.report.hide_wakeups += 1;
                self.report.total_energy_j += wake_cost_j + burst_rx_j;
                let (class, cause) = if useful {
                    rec.incr(Counter::FleetWakeupsProper);
                    (WakeClass::Proper, WakeCause::Proper)
                } else {
                    self.report.spurious_wakeups += 1;
                    let cause = if self.clients.churned_since_sync[i] {
                        WakeCause::PortChurn
                    } else {
                        WakeCause::Unknown
                    };
                    rec.incr(spurious_cause_counter(cause));
                    (WakeClass::Spurious, cause)
                };
                let e = self.lane(aid);
                e.charge_wake(class, cause, &pricing);
                e.burst_rx_nj += burst_rx_nj;
                if trace.is_enabled() {
                    trace.emit(
                        now,
                        TraceEventKind::WakeDecision {
                            aid: aid.value(),
                            port,
                            frame_id: self.first_frame_on(port),
                            class,
                            cause,
                        },
                    );
                }
            } else if let Some(port) = useful_port {
                self.report.missed_wakeups += 1;
                let cause = self.clients.last_desync[i].unwrap_or(WakeCause::Unknown);
                rec.incr(missed_cause_counter(cause));
                self.lane(aid)
                    .charge_wake(WakeClass::Missed, cause, &pricing);
                if trace.is_enabled() {
                    trace.emit(
                        now,
                        TraceEventKind::WakeDecision {
                            aid: aid.value(),
                            port,
                            frame_id: self.first_frame_on(port),
                            class: WakeClass::Missed,
                            cause,
                        },
                    );
                }
            }
        }
        // One bulk τ_lp charge replaces per-call atomics; the snapshot
        // the run observes at the end is identical.
        self.ap
            .port_table()
            .charge_lookups(lp_lookups, lp_hits, lp_lookups - lp_hits);
        self.buffered.clear();

        let next = now + Self::dtim_interval();
        if next < self.cfg.duration_secs {
            self.queue.schedule(next, Event::Dtim);
        }
    }

    /// Routes one popped event to its handler.
    #[inline]
    fn dispatch<T: TraceSink>(
        &mut self,
        now: f64,
        event: Event,
        rec: &mut Recorder,
        trace: &mut T,
    ) -> Result<(), FleetError> {
        match event {
            Event::Dtim => self.handle_dtim(now, rec, trace),
            Event::Arrival(frame) => {
                self.report.frames += 1;
                let id = self.next_frame_id;
                self.next_frame_id += 1;
                self.buffered.push((id, frame));
                if let Some(next) = self.stream.next() {
                    self.queue.schedule(next.time, Event::Arrival(next));
                }
            }
            Event::Join { client, epoch } => self.handle_join(client, epoch, now, trace)?,
            Event::Leave { client, epoch } => self.handle_leave(client, epoch, now, trace)?,
            Event::Refresh { client, epoch } => self.handle_refresh(client, epoch, now, trace)?,
            Event::Suspend { client, epoch } => {
                self.handle_suspend_resume(client, epoch, now, true)
            }
            Event::Resume { client, epoch } => {
                self.handle_suspend_resume(client, epoch, now, false)
            }
        }
        Ok(())
    }

    fn run<T: TraceSink, P: StageProfiler>(
        mut self,
        rec: &mut Recorder,
        trace: &mut T,
        prof: &mut P,
    ) -> Result<BssReport, FleetError> {
        loop {
            let pop_start = P::ENABLED.then(std::time::Instant::now);
            let Some((now, event)) = self.queue.pop() else {
                break;
            };
            if let Some(t) = pop_start {
                prof.add(FleetStage::QueuePop, t.elapsed().as_nanos() as u64);
            }
            if now >= self.cfg.duration_secs {
                break;
            }
            self.report.events += 1;
            if P::ENABLED {
                let stage = match &event {
                    Event::Dtim => FleetStage::DtimSweep,
                    Event::Arrival(_) => FleetStage::Arrival,
                    Event::Refresh { .. } => FleetStage::Refresh,
                    Event::Join { .. } | Event::Leave { .. } => FleetStage::Churn,
                    Event::Suspend { .. } | Event::Resume { .. } => FleetStage::Churn,
                };
                let t = std::time::Instant::now();
                self.dispatch(now, event, rec, trace)?;
                prof.add(stage, t.elapsed().as_nanos() as u64);
            } else {
                self.dispatch(now, event, rec, trace)?;
            }
        }
        self.ap.port_table().observe_into(rec);
        // Materialize the dense lanes into the report's sorted ledger:
        // the source half of every key is this shard's constant, so
        // ascending AID order is ascending key order.
        let source = self.source;
        let rows = self
            .lane_touched
            .iter()
            .enumerate()
            .filter(|&(_, &touched)| touched)
            .map(|(v, _)| ((source, v as u16), self.lanes[v]))
            .collect();
        self.report.attribution = AttributionLedger::from_sorted_rows(rows);
        Ok(self.report)
    }
}

/// Runs one BSS to completion, returning its tallies and a recorder
/// holding only this shard's metrics (fanned into the fleet aggregate
/// in input order by the caller).
pub(crate) fn run_bss(
    cfg: &FleetConfig,
    bss_index: usize,
) -> Result<(BssReport, Recorder), FleetError> {
    run_bss_traced(cfg, bss_index, &mut NoopTrace)
}

/// [`run_bss`] with event tracing: the shard's kernel streams
/// structured events into `trace` in simulation-time order. The metrics
/// side is identical to the untraced run — the engine performs online
/// provenance attribution either way — so `--trace` never changes the
/// `hide-metrics/1` artifact.
pub(crate) fn run_bss_traced<T: TraceSink>(
    cfg: &FleetConfig,
    bss_index: usize,
    trace: &mut T,
) -> Result<(BssReport, Recorder), FleetError> {
    run_bss_profiled(cfg, bss_index, trace, &mut NoopProfiler)
}

/// [`run_bss_traced`] with per-stage wall-time profiling. Profiling
/// never touches the metrics artifact — spans land in the fleet-local
/// [`StageProfiler`], not the golden-gated recorder — so the profiled
/// run's outputs are byte-identical to the unprofiled run's.
pub(crate) fn run_bss_profiled<T: TraceSink, P: StageProfiler>(
    cfg: &FleetConfig,
    bss_index: usize,
    trace: &mut T,
    prof: &mut P,
) -> Result<(BssReport, Recorder), FleetError> {
    let start = std::time::Instant::now();
    let mut rec = Recorder::new();
    let engine = Engine::new(cfg, bss_index);
    if P::ENABLED {
        prof.add(FleetStage::Setup, start.elapsed().as_nanos() as u64);
    }
    let loop_start = std::time::Instant::now();
    let report = engine.run(&mut rec, trace, prof)?;
    rec.add_span(
        Stage::FleetEventLoop,
        loop_start.elapsed().as_nanos() as u64,
    );

    rec.add(Counter::FleetBssRuns, 1);
    rec.add(Counter::FleetEvents, report.events);
    rec.add(Counter::FleetFrames, report.frames);
    rec.add(Counter::FleetAssociations, report.associations);
    rec.add(Counter::FleetDisassociations, report.disassociations);
    rec.add(Counter::FleetRefreshesSent, report.refreshes_sent);
    rec.add(Counter::FleetRefreshesLost, report.refreshes_lost);
    rec.add(Counter::FleetPortEntriesExpired, report.entries_expired);
    rec.add(Counter::FleetWakeups, report.wakeups);
    rec.add(Counter::FleetMissedWakeups, report.missed_wakeups);
    rec.add(Counter::FleetSpuriousWakeups, report.spurious_wakeups);
    rec.add(Counter::FleetScheduledWakes, report.scheduled_wakes);
    rec.add(Counter::FleetDeferredWakeups, report.deferred_wakeups);
    rec.observe(Distribution::FleetClientsPerBss, cfg.clients_per_bss as u64);
    rec.add_span(Stage::Fleet, start.elapsed().as_nanos() as u64);
    Ok((report, rec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_is_positive_with_requested_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exp(&mut rng, 5.0)).sum();
        assert!((sum / n as f64 - 5.0).abs() < 0.25);
    }

    #[test]
    fn sample_ports_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let universe = [80u16, 443, 1900, 5353, 17500];
        let got = sample_ports(&mut rng, &universe, 3);
        assert_eq!(got.len(), 3);
        let mut dedup = got.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
        // Requesting more than the universe clamps.
        let all = sample_ports(&mut rng, &universe, 99);
        assert_eq!(all.len(), universe.len());
    }

    #[test]
    fn single_bss_run_produces_activity() {
        let cfg = FleetConfig {
            bss_count: 1,
            duration_secs: 20.0,
            ..FleetConfig::default()
        };
        let (report, rec) = run_bss(&cfg, 0).unwrap();
        assert!(report.events > 0);
        assert!(report.associations > 0);
        assert!(report.refreshes_sent > 0);
        assert!(report.total_energy_j > 0.0);
        assert!(report.baseline_energy_j >= report.total_energy_j * 0.5);
        assert_eq!(rec.counter(Counter::FleetBssRuns), 1);
        assert_eq!(rec.counter(Counter::FleetEvents), report.events);
        // The ledger mirrors every spent-energy charge: summed over the
        // clients it reproduces the aggregate joule tally to within the
        // per-charge ±0.5 nJ rounding.
        assert!(!report.attribution.is_empty());
        let spent_j = report.attribution.spent_nj() as f64 / 1e9;
        let rel = (spent_j - report.total_energy_j).abs() / report.total_energy_j;
        assert!(
            rel < 1e-5,
            "ledger {spent_j} vs aggregate {}",
            report.total_energy_j
        );
        // All ledger keys live on this shard's source lane.
        assert!(report.attribution.rows().iter().all(|((s, _), _)| *s == 0));
    }

    #[test]
    fn run_bss_is_deterministic_per_index() {
        let cfg = FleetConfig {
            duration_secs: 15.0,
            ..FleetConfig::default()
        };
        let (r1, m1) = run_bss(&cfg, 3).unwrap();
        let (r2, m2) = run_bss(&cfg, 3).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(m1.to_json(), m2.to_json());
        // Different indices decorrelate.
        let (r3, _) = run_bss(&cfg, 4).unwrap();
        assert_ne!(r1, r3);
    }
}
