//! One BSS under the discrete-event kernel: an AP, a churning client
//! population, a streaming broadcast source, and the DTIM delivery
//! loop.
//!
//! The engine keeps **two** port tables: the AP's real
//! [`ClientPortTable`] (updated only by UDP Port Messages that actually
//! arrive, aged by the stale timeout) and a *ground-truth* table of
//! what each client really listens on right now. At every DTIM the two
//! are compared per suspended HIDE client: flagged-and-useful is a
//! proper wakeup, useful-but-unflagged is a **missed wakeup** (a lost
//! or expired refresh hid traffic the client wanted), and
//! flagged-but-useless is a **spurious wakeup** (the AP woke the client
//! on stale interests). With zero refresh loss the two tables are
//! updated atomically at the same events, so both failure counts are
//! provably zero — the invariant the tier-1 tests pin down.

use crate::error::FleetError;
use crate::fleet::FleetConfig;
use crate::kernel::{derive_seed, EventQueue};
use hide_core::ap::{AccessPoint, ClientPortTable};
use hide_core::error::CoreError;
use hide_energy::attribution::{joules_to_nj, AttributionLedger, WakePricing};
use hide_obs::{
    Counter, Distribution, MetricsSink, NoopTrace, Recorder, Stage, TraceEventKind, TraceSink,
    WakeCause, WakeClass,
};
use hide_traces::record::TraceFrame;
use hide_traces::stream::FrameStream;
use hide_wifi::assoc::{AssociationRequest, Disassociation};
use hide_wifi::frame::UdpPortMessage;
use hide_wifi::mac::{Aid, MacAddr};
use hide_wifi::phy::{self, DataRate};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// SSID every fleet BSS advertises.
const SSID: &str = "hide-fleet";

/// Deterministic tallies from one BSS run. Aggregated across the fleet
/// by field-wise addition ([`BssReport::merge_from`]).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BssReport {
    /// Kernel events processed within the horizon.
    pub events: u64,
    /// Broadcast frames drawn from the trace stream.
    pub frames: u64,
    /// Successful association exchanges.
    pub associations: u64,
    /// Disassociations (clients leaving).
    pub disassociations: u64,
    /// UDP Port Message refreshes transmitted by clients.
    pub refreshes_sent: u64,
    /// Refreshes lost before reaching the AP.
    pub refreshes_lost: u64,
    /// Port-table `(port, client)` entries aged out by the AP.
    pub entries_expired: u64,
    /// Suspended clients woken at a DTIM (legacy + HIDE).
    pub wakeups: u64,
    /// Wakeups of suspended HIDE clients specifically.
    pub hide_wakeups: u64,
    /// DTIMs where a suspended HIDE client had useful traffic but was
    /// not flagged (stale/lost refresh hid it).
    pub missed_wakeups: u64,
    /// DTIMs where a suspended HIDE client was flagged for traffic it
    /// no longer wanted.
    pub spurious_wakeups: u64,
    /// DTIMs where a suspended HIDE client had useful traffic at all
    /// (the denominator of the missed-wakeup rate).
    pub useful_opportunities: u64,
    /// Energy actually spent by the population, joules.
    pub total_energy_j: f64,
    /// Energy the same population would spend all-legacy (receive-all),
    /// joules.
    pub baseline_energy_j: f64,
    /// Airtime consumed by UDP Port Messages, seconds (Eq. 21
    /// numerator).
    pub refresh_airtime_secs: f64,
    /// Per-client, per-cause energy ledger (integer nanojoules), keyed
    /// by `(bss_index, aid)`. Mirrors every charge made into
    /// [`BssReport::total_energy_j`] plus the counterfactual
    /// forgone-suspend cost of missed wakeups.
    pub attribution: AttributionLedger,
}

impl BssReport {
    /// Adds `other`'s tallies into `self`. Field-wise addition, so
    /// folding shards in input order is deterministic.
    pub fn merge_from(&mut self, other: &BssReport) {
        self.events += other.events;
        self.frames += other.frames;
        self.associations += other.associations;
        self.disassociations += other.disassociations;
        self.refreshes_sent += other.refreshes_sent;
        self.refreshes_lost += other.refreshes_lost;
        self.entries_expired += other.entries_expired;
        self.wakeups += other.wakeups;
        self.hide_wakeups += other.hide_wakeups;
        self.missed_wakeups += other.missed_wakeups;
        self.spurious_wakeups += other.spurious_wakeups;
        self.useful_opportunities += other.useful_opportunities;
        self.total_energy_j += other.total_energy_j;
        self.baseline_energy_j += other.baseline_energy_j;
        self.refresh_airtime_secs += other.refresh_airtime_secs;
        self.attribution.merge_from(&other.attribution);
    }
}

/// Everything the kernel can schedule in a BSS.
#[derive(Debug, Clone)]
enum Event {
    /// DTIM boundary: age the table, evaluate the buffered burst.
    Dtim,
    /// A broadcast frame hits the air (pulled lazily from the stream).
    Arrival(TraceFrame),
    /// Client (re)joins the BSS.
    Join { client: usize, epoch: u64 },
    /// Client leaves the BSS.
    Leave { client: usize, epoch: u64 },
    /// Periodic UDP Port Message refresh.
    Refresh { client: usize, epoch: u64 },
    /// Client's screen goes off; it enters power-save.
    Suspend { client: usize, epoch: u64 },
    /// User wakes the device; radio stays awake.
    Resume { client: usize, epoch: u64 },
}

/// Live state of one client.
#[derive(Debug)]
struct Client {
    mac: MacAddr,
    hide: bool,
    /// Ground-truth listened-on ports right now.
    ports: Vec<u16>,
    /// Assigned AID while associated.
    aid: Option<Aid>,
    /// Bumped on every leave; events carrying an older epoch are stale
    /// and dropped, which cancels the previous presence period's timers
    /// without searching the heap.
    epoch: u64,
    suspended: bool,
    /// The most recent event that de-synchronized the AP's view of this
    /// client from ground truth (lost refresh, expiry, churn); cleared
    /// whenever a refresh is applied or the client (re)joins. This is
    /// the online form of the provenance analyzer's backward walk: at a
    /// missed wakeup the nearest de-sync event *is* the cause.
    last_desync: Option<WakeCause>,
    /// Whether the client has re-sampled its ports since the AP last
    /// heard from it — the only way a *spurious* wake can arise.
    churned_since_sync: bool,
    rng: StdRng,
}

/// Draws an exponential variate with the given mean.
fn exp(rng: &mut StdRng, mean: f64) -> f64 {
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Samples `k` distinct ports from the scenario's (deduplicated,
/// sorted) port universe.
fn sample_ports(rng: &mut StdRng, universe: &[u16], k: usize) -> Vec<u16> {
    let k = k.min(universe.len());
    let mut chosen: Vec<u16> = Vec::with_capacity(k);
    while chosen.len() < k {
        let p = universe[rng.gen_range(0..universe.len())];
        if !chosen.contains(&p) {
            chosen.push(p);
        }
    }
    chosen
}

/// Metrics counter for a missed wakeup with the given cause.
fn missed_cause_counter(cause: WakeCause) -> Counter {
    match cause {
        WakeCause::RefreshLost => Counter::FleetMissedRefreshLost,
        WakeCause::EntryExpired => Counter::FleetMissedEntryExpired,
        WakeCause::PortChurn => Counter::FleetMissedPortChurn,
        WakeCause::Proper | WakeCause::Unknown => Counter::FleetMissedUnknown,
    }
}

/// Metrics counter for a spurious wakeup with the given cause. A
/// spurious wake needs the AP to believe in ports the client left, so
/// port churn is the only attributable cause.
fn spurious_cause_counter(cause: WakeCause) -> Counter {
    match cause {
        WakeCause::PortChurn => Counter::FleetSpuriousPortChurn,
        _ => Counter::FleetSpuriousUnknown,
    }
}

/// The single-BSS discrete-event engine.
struct Engine<'a> {
    cfg: &'a FleetConfig,
    bssid: MacAddr,
    ap: AccessPoint,
    /// Ground truth of every associated client's current ports.
    truth: ClientPortTable,
    clients: Vec<Client>,
    queue: EventQueue<Event>,
    stream: FrameStream,
    /// Buffered broadcast burst, each frame tagged with a per-shard id
    /// (1-based; 0 means "no frame") so wake decisions can cite the
    /// frame that caused them.
    buffered: Vec<(u64, TraceFrame)>,
    next_frame_id: u64,
    port_universe: Vec<u16>,
    report: BssReport,
    /// `E_rm + E_sp` plus the wakelock tail, charged per wakeup.
    wake_cost_j: f64,
    /// The same wake prices pre-rounded to integer nanojoules, charged
    /// into the per-client ledger so engine-online attribution equals a
    /// trace-join (`count × price`) bit-for-bit.
    pricing: WakePricing,
    /// This shard's trace-source lane (the BSS index), the first half of
    /// every ledger key.
    source: u32,
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a FleetConfig, bss_index: usize) -> Self {
        let seed = derive_seed(cfg.seed, bss_index as u64);
        let specs =
            hide_sim::network::fleet(cfg.clients_per_bss, cfg.adoption, derive_seed(seed, 1));
        let bssid = MacAddr::station(0);
        let mut ap = AccessPoint::new(bssid);
        ap.set_ssid(SSID);

        let mut port_universe = cfg.scenario.params().port_mix.ports();
        port_universe.sort_unstable();
        port_universe.dedup();

        let churn = &cfg.churn;
        let mut queue = EventQueue::with_seed(derive_seed(seed, 3));
        let stagger = cfg.duration_secs.min(churn.mean_absent_secs);
        let clients: Vec<Client> = specs
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut rng = StdRng::seed_from_u64(derive_seed(spec.seed, 0x51ED));
                let ports = sample_ports(&mut rng, &port_universe, churn.ports_per_client);
                let join_at = rng.gen_range(0.0..stagger);
                queue.schedule(
                    join_at,
                    Event::Join {
                        client: i,
                        epoch: 0,
                    },
                );
                Client {
                    mac: MacAddr::station(i as u32 + 1),
                    hide: spec.hide_enabled,
                    ports,
                    aid: None,
                    epoch: 0,
                    suspended: false,
                    last_desync: None,
                    churned_since_sync: false,
                    rng,
                }
            })
            .collect();

        let mut stream = FrameStream::new(
            &cfg.scenario.params(),
            cfg.duration_secs,
            derive_seed(seed, 2),
        );
        if let Some(frame) = stream.next() {
            queue.schedule(frame.time, Event::Arrival(frame));
        }
        queue.schedule(Self::dtim_interval(), Event::Dtim);

        let profile = &cfg.profile;
        let wake_cost_j =
            profile.wake_cycle_energy() + profile.wakelock_secs * profile.active_idle_power;
        let pricing = WakePricing::from_profile(profile);

        Engine {
            cfg,
            bssid,
            ap,
            truth: ClientPortTable::new(),
            clients,
            queue,
            stream,
            buffered: Vec::new(),
            next_frame_id: 1,
            port_universe,
            report: BssReport::default(),
            wake_cost_j,
            pricing,
            source: bss_index as u32,
        }
    }

    /// Paper-default DTIM spacing: 102.4 ms beacons, DTIM period 1.
    fn dtim_interval() -> f64 {
        hide_wifi::timing::TIME_UNIT_SECS * 100.0
    }

    /// Re-syncs the truth table and transmits a UDP Port Message,
    /// possibly re-sampling ports (port churn) and possibly losing the
    /// message on the way to the AP. Tx energy is charged either way —
    /// the client cannot know the message was lost.
    fn refresh<T: TraceSink>(
        &mut self,
        i: usize,
        aid: Aid,
        now: f64,
        trace: &mut T,
    ) -> Result<(), FleetError> {
        let churn = &self.cfg.churn;
        let c = &mut self.clients[i];
        if churn.port_churn > 0.0 && c.rng.gen_bool(churn.port_churn) {
            c.ports = sample_ports(&mut c.rng, &self.port_universe, churn.ports_per_client);
            c.churned_since_sync = true;
            c.last_desync = Some(WakeCause::PortChurn);
            if trace.is_enabled() {
                trace.emit(now, TraceEventKind::PortChurn { aid: aid.value() });
            }
        }
        self.truth.update_client(aid, &c.ports);
        let msg = UdpPortMessage::new(c.mac, self.bssid, c.ports.iter().copied())
            .map_err(|e| FleetError::Core(CoreError::from(e)))?;
        let airtime = phy::airtime_of_total_bytes(msg.len_bytes(), DataRate::R1M);
        self.report.refreshes_sent += 1;
        self.report.refresh_airtime_secs += airtime;
        self.report.total_energy_j += airtime * self.cfg.profile.tx_power;
        self.report
            .attribution
            .entry((self.source, aid.value()))
            .refresh_tx_nj += joules_to_nj(airtime * self.cfg.profile.tx_power);
        let lost = churn.refresh_loss > 0.0 && c.rng.gen_bool(churn.refresh_loss);
        if lost {
            self.report.refreshes_lost += 1;
            c.last_desync = Some(WakeCause::RefreshLost);
            if trace.is_enabled() {
                trace.emit(now, TraceEventKind::RefreshLost { aid: aid.value() });
            }
        } else {
            self.ap.handle_udp_port_message_at(&msg, now)?;
            c.last_desync = None;
            c.churned_since_sync = false;
            if trace.is_enabled() {
                trace.emit(now, TraceEventKind::RefreshApplied { aid: aid.value() });
            }
        }
        Ok(())
    }

    fn handle_join<T: TraceSink>(
        &mut self,
        i: usize,
        epoch: u64,
        now: f64,
        trace: &mut T,
    ) -> Result<(), FleetError> {
        let churn = &self.cfg.churn;
        let c = &mut self.clients[i];
        if epoch != c.epoch {
            return Ok(());
        }
        let mut request = AssociationRequest::new(c.mac, self.bssid, SSID);
        if c.hide {
            request = request.with_hide_support();
        }
        let response = self.ap.handle_association_request(&request);
        let Some(aid) = response.aid() else {
            // AID space exhausted; retry after another absent dwell.
            let delay = exp(&mut c.rng, churn.mean_absent_secs);
            self.queue
                .schedule(now + delay, Event::Join { client: i, epoch });
            return Ok(());
        };
        c.aid = Some(aid);
        c.suspended = false;
        // A (re)join is a provenance sync point: the AP starts from a
        // clean slate for this AID.
        c.last_desync = None;
        c.churned_since_sync = false;
        self.report.associations += 1;
        self.truth.update_client(aid, &c.ports);
        if trace.is_enabled() {
            trace.emit(
                now,
                TraceEventKind::Join {
                    aid: aid.value(),
                    hide: c.hide,
                },
            );
        }

        let active_dwell = exp(&mut c.rng, churn.mean_active_secs);
        let present_dwell = exp(&mut c.rng, churn.mean_present_secs);
        let hide = c.hide;
        if hide {
            // First refresh rides along with association, so a loss-free
            // run never has an associated-but-unknown HIDE client.
            self.refresh(i, aid, now, trace)?;
            self.queue.schedule(
                now + churn.refresh_interval_secs,
                Event::Refresh { client: i, epoch },
            );
        }
        self.queue
            .schedule(now + active_dwell, Event::Suspend { client: i, epoch });
        self.queue
            .schedule(now + present_dwell, Event::Leave { client: i, epoch });
        Ok(())
    }

    fn handle_leave<T: TraceSink>(
        &mut self,
        i: usize,
        epoch: u64,
        now: f64,
        trace: &mut T,
    ) -> Result<(), FleetError> {
        let c = &mut self.clients[i];
        if epoch != c.epoch {
            return Ok(());
        }
        let Some(aid) = c.aid else {
            return Ok(());
        };
        if trace.is_enabled() {
            trace.emit(now, TraceEventKind::Leave { aid: aid.value() });
        }
        self.truth.remove_client(aid);
        let notice = Disassociation::new(c.mac, self.bssid, Disassociation::REASON_LEAVING);
        self.ap.handle_disassociation(&notice)?;
        c.aid = None;
        c.epoch += 1;
        let epoch = c.epoch;
        self.report.disassociations += 1;
        let absent_dwell = exp(&mut c.rng, self.cfg.churn.mean_absent_secs);
        self.queue
            .schedule(now + absent_dwell, Event::Join { client: i, epoch });
        Ok(())
    }

    fn handle_refresh<T: TraceSink>(
        &mut self,
        i: usize,
        epoch: u64,
        now: f64,
        trace: &mut T,
    ) -> Result<(), FleetError> {
        let c = &self.clients[i];
        if epoch != c.epoch {
            return Ok(());
        }
        let Some(aid) = c.aid else {
            return Ok(());
        };
        self.refresh(i, aid, now, trace)?;
        self.queue.schedule(
            now + self.cfg.churn.refresh_interval_secs,
            Event::Refresh { client: i, epoch },
        );
        Ok(())
    }

    fn handle_suspend_resume(&mut self, i: usize, epoch: u64, now: f64, suspend: bool) {
        let churn = &self.cfg.churn;
        let c = &mut self.clients[i];
        if epoch != c.epoch || c.aid.is_none() {
            return;
        }
        c.suspended = suspend;
        if suspend {
            let dwell = exp(&mut c.rng, churn.mean_suspended_secs);
            self.queue
                .schedule(now + dwell, Event::Resume { client: i, epoch });
        } else {
            let dwell = exp(&mut c.rng, churn.mean_active_secs);
            self.queue
                .schedule(now + dwell, Event::Suspend { client: i, epoch });
        }
    }

    /// First id among the buffered frames destined to `port` (0 when
    /// none) — the frame a wake decision cites as its trigger.
    fn first_frame_on(&self, port: u16) -> u64 {
        self.buffered
            .iter()
            .find(|(_, f)| f.dst_port == port)
            .map(|(id, _)| *id)
            .unwrap_or(0)
    }

    /// The DTIM boundary: age the AP table, then resolve the buffered
    /// burst against every associated client, attributing every missed
    /// and spurious wakeup to its causal event online (the nearest
    /// de-sync recorded in the client state — equivalent to the
    /// analyzer's backward walk over the trace).
    fn handle_dtim<T: TraceSink>(&mut self, now: f64, rec: &mut Recorder, trace: &mut T) {
        let profile = &self.cfg.profile;
        let expired = self
            .ap
            .expire_stale_port_entries(now - self.cfg.churn.stale_timeout_secs);
        self.report.entries_expired += expired.entries_removed;
        for &aid in &expired.clients {
            if let Some(c) = self.clients.iter_mut().find(|c| c.aid == Some(aid)) {
                c.last_desync = Some(WakeCause::EntryExpired);
            }
            if trace.is_enabled() {
                trace.emit(now, TraceEventKind::EntryExpired { aid: aid.value() });
            }
        }

        rec.observe(Distribution::FleetFramesPerDtim, self.buffered.len() as u64);
        rec.observe(
            Distribution::FleetPortOccupancy,
            self.ap.port_table().entry_count() as u64,
        );
        if trace.is_enabled() {
            trace.emit(
                now,
                TraceEventKind::DtimBoundary {
                    buffered: self.buffered.len() as u32,
                    table_entries: self.ap.port_table().entry_count() as u32,
                },
            );
        }

        let burst_rx_j: f64 = self
            .buffered
            .iter()
            .map(|(_, f)| f.airtime() * profile.rx_power)
            .sum();
        let mut ports: Vec<u16> = self.buffered.iter().map(|(_, f)| f.dst_port).collect();
        ports.sort_unstable();
        ports.dedup();

        // Pre-rounded burst price: every client in this DTIM is charged
        // the same integer, keeping the ledger merge-exact.
        let burst_rx_nj = joules_to_nj(burst_rx_j);
        let pricing = self.pricing;
        for c in &self.clients {
            let Some(aid) = c.aid else {
                continue;
            };
            let key = (self.source, aid.value());
            // Every associated client receives the DTIM beacon.
            self.report.total_energy_j += profile.beacon_energy;
            self.report.baseline_energy_j += profile.beacon_energy;
            self.report.attribution.entry(key).beacon_nj += pricing.beacon_nj;

            if !c.suspended {
                // Radio already awake: the burst is heard either way.
                self.report.total_energy_j += burst_rx_j;
                self.report.baseline_energy_j += burst_rx_j;
                self.report.attribution.entry(key).burst_rx_nj += burst_rx_nj;
                continue;
            }
            if !self.buffered.is_empty() {
                // Receive-all baseline wakes for any buffered traffic.
                self.report.baseline_energy_j += self.wake_cost_j + burst_rx_j;
            }
            if !c.hide {
                if !self.buffered.is_empty() {
                    self.report.wakeups += 1;
                    self.report.total_energy_j += self.wake_cost_j + burst_rx_j;
                    let e = self.report.attribution.entry(key);
                    e.charge_wake(WakeClass::Legacy, WakeCause::Proper, &pricing);
                    e.burst_rx_nj += burst_rx_nj;
                    if trace.is_enabled() {
                        trace.emit(
                            now,
                            TraceEventKind::WakeDecision {
                                aid: aid.value(),
                                port: 0,
                                frame_id: self.buffered.first().map(|(id, _)| *id).unwrap_or(0),
                                class: WakeClass::Legacy,
                                cause: WakeCause::Proper,
                            },
                        );
                    }
                }
                continue;
            }
            let flagged_port = ports
                .iter()
                .copied()
                .find(|&p| self.ap.port_table().client_listens_on(aid, p));
            let useful_port = ports
                .iter()
                .copied()
                .find(|&p| self.truth.client_listens_on(aid, p));
            let useful = useful_port.is_some();
            if useful {
                self.report.useful_opportunities += 1;
            }
            if let Some(port) = flagged_port {
                self.report.wakeups += 1;
                self.report.hide_wakeups += 1;
                self.report.total_energy_j += self.wake_cost_j + burst_rx_j;
                let (class, cause) = if useful {
                    rec.incr(Counter::FleetWakeupsProper);
                    (WakeClass::Proper, WakeCause::Proper)
                } else {
                    self.report.spurious_wakeups += 1;
                    let cause = if c.churned_since_sync {
                        WakeCause::PortChurn
                    } else {
                        WakeCause::Unknown
                    };
                    rec.incr(spurious_cause_counter(cause));
                    (WakeClass::Spurious, cause)
                };
                let e = self.report.attribution.entry(key);
                e.charge_wake(class, cause, &pricing);
                e.burst_rx_nj += burst_rx_nj;
                if trace.is_enabled() {
                    trace.emit(
                        now,
                        TraceEventKind::WakeDecision {
                            aid: aid.value(),
                            port,
                            frame_id: self.first_frame_on(port),
                            class,
                            cause,
                        },
                    );
                }
            } else if let Some(port) = useful_port {
                self.report.missed_wakeups += 1;
                let cause = c.last_desync.unwrap_or(WakeCause::Unknown);
                rec.incr(missed_cause_counter(cause));
                self.report
                    .attribution
                    .entry(key)
                    .charge_wake(WakeClass::Missed, cause, &pricing);
                if trace.is_enabled() {
                    trace.emit(
                        now,
                        TraceEventKind::WakeDecision {
                            aid: aid.value(),
                            port,
                            frame_id: self.first_frame_on(port),
                            class: WakeClass::Missed,
                            cause,
                        },
                    );
                }
            }
        }
        self.buffered.clear();

        let next = now + Self::dtim_interval();
        if next < self.cfg.duration_secs {
            self.queue.schedule(next, Event::Dtim);
        }
    }

    fn run<T: TraceSink>(
        mut self,
        rec: &mut Recorder,
        trace: &mut T,
    ) -> Result<BssReport, FleetError> {
        while let Some((now, event)) = self.queue.pop() {
            if now >= self.cfg.duration_secs {
                break;
            }
            self.report.events += 1;
            match event {
                Event::Dtim => self.handle_dtim(now, rec, trace),
                Event::Arrival(frame) => {
                    self.report.frames += 1;
                    let id = self.next_frame_id;
                    self.next_frame_id += 1;
                    self.buffered.push((id, frame));
                    if let Some(next) = self.stream.next() {
                        self.queue.schedule(next.time, Event::Arrival(next));
                    }
                }
                Event::Join { client, epoch } => self.handle_join(client, epoch, now, trace)?,
                Event::Leave { client, epoch } => self.handle_leave(client, epoch, now, trace)?,
                Event::Refresh { client, epoch } => {
                    self.handle_refresh(client, epoch, now, trace)?
                }
                Event::Suspend { client, epoch } => {
                    self.handle_suspend_resume(client, epoch, now, true)
                }
                Event::Resume { client, epoch } => {
                    self.handle_suspend_resume(client, epoch, now, false)
                }
            }
        }
        self.ap.port_table().observe_into(rec);
        Ok(self.report)
    }
}

/// Runs one BSS to completion, returning its tallies and a recorder
/// holding only this shard's metrics (fanned into the fleet aggregate
/// in input order by the caller).
pub(crate) fn run_bss(
    cfg: &FleetConfig,
    bss_index: usize,
) -> Result<(BssReport, Recorder), FleetError> {
    run_bss_traced(cfg, bss_index, &mut NoopTrace)
}

/// [`run_bss`] with event tracing: the shard's kernel streams
/// structured events into `trace` in simulation-time order. The metrics
/// side is identical to the untraced run — the engine performs online
/// provenance attribution either way — so `--trace` never changes the
/// `hide-metrics/1` artifact.
pub(crate) fn run_bss_traced<T: TraceSink>(
    cfg: &FleetConfig,
    bss_index: usize,
    trace: &mut T,
) -> Result<(BssReport, Recorder), FleetError> {
    let start = std::time::Instant::now();
    let mut rec = Recorder::new();
    let engine = Engine::new(cfg, bss_index);
    let loop_start = std::time::Instant::now();
    let report = engine.run(&mut rec, trace)?;
    rec.add_span(
        Stage::FleetEventLoop,
        loop_start.elapsed().as_nanos() as u64,
    );

    rec.add(Counter::FleetBssRuns, 1);
    rec.add(Counter::FleetEvents, report.events);
    rec.add(Counter::FleetFrames, report.frames);
    rec.add(Counter::FleetAssociations, report.associations);
    rec.add(Counter::FleetDisassociations, report.disassociations);
    rec.add(Counter::FleetRefreshesSent, report.refreshes_sent);
    rec.add(Counter::FleetRefreshesLost, report.refreshes_lost);
    rec.add(Counter::FleetPortEntriesExpired, report.entries_expired);
    rec.add(Counter::FleetWakeups, report.wakeups);
    rec.add(Counter::FleetMissedWakeups, report.missed_wakeups);
    rec.add(Counter::FleetSpuriousWakeups, report.spurious_wakeups);
    rec.observe(Distribution::FleetClientsPerBss, cfg.clients_per_bss as u64);
    rec.add_span(Stage::Fleet, start.elapsed().as_nanos() as u64);
    Ok((report, rec))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_is_positive_with_requested_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| exp(&mut rng, 5.0)).sum();
        assert!((sum / n as f64 - 5.0).abs() < 0.25);
    }

    #[test]
    fn sample_ports_distinct_and_bounded() {
        let mut rng = StdRng::seed_from_u64(3);
        let universe = [80u16, 443, 1900, 5353, 17500];
        let got = sample_ports(&mut rng, &universe, 3);
        assert_eq!(got.len(), 3);
        let mut dedup = got.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 3);
        // Requesting more than the universe clamps.
        let all = sample_ports(&mut rng, &universe, 99);
        assert_eq!(all.len(), universe.len());
    }

    #[test]
    fn single_bss_run_produces_activity() {
        let cfg = FleetConfig {
            bss_count: 1,
            duration_secs: 20.0,
            ..FleetConfig::default()
        };
        let (report, rec) = run_bss(&cfg, 0).unwrap();
        assert!(report.events > 0);
        assert!(report.associations > 0);
        assert!(report.refreshes_sent > 0);
        assert!(report.total_energy_j > 0.0);
        assert!(report.baseline_energy_j >= report.total_energy_j * 0.5);
        assert_eq!(rec.counter(Counter::FleetBssRuns), 1);
        assert_eq!(rec.counter(Counter::FleetEvents), report.events);
        // The ledger mirrors every spent-energy charge: summed over the
        // clients it reproduces the aggregate joule tally to within the
        // per-charge ±0.5 nJ rounding.
        assert!(!report.attribution.is_empty());
        let spent_j = report.attribution.spent_nj() as f64 / 1e9;
        let rel = (spent_j - report.total_energy_j).abs() / report.total_energy_j;
        assert!(
            rel < 1e-5,
            "ledger {spent_j} vs aggregate {}",
            report.total_energy_j
        );
        // All ledger keys live on this shard's source lane.
        assert!(report.attribution.rows().iter().all(|((s, _), _)| *s == 0));
    }

    #[test]
    fn run_bss_is_deterministic_per_index() {
        let cfg = FleetConfig {
            duration_secs: 15.0,
            ..FleetConfig::default()
        };
        let (r1, m1) = run_bss(&cfg, 3).unwrap();
        let (r2, m2) = run_bss(&cfg, 3).unwrap();
        assert_eq!(r1, r2);
        assert_eq!(m1.to_json(), m2.to_json());
        // Different indices decorrelate.
        let (r3, _) = run_bss(&cfg, 4).unwrap();
        assert_ne!(r1, r3);
    }
}
