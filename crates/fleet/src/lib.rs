//! Deterministic discrete-event multi-BSS fleet simulator with client
//! lifecycle churn.
//!
//! The static layers of this workspace answer "what does one DTIM
//! cycle cost?" ([`hide_core`]) and "what does one trace replay cost
//! for a fixed population?" ([`hide_sim`]). This crate answers the
//! deployment question the HIDE paper poses at evaluation scale: **what
//! happens across thousands of BSSes whose clients come and go**, with
//! associations and disassociations running the real
//! `hide_wifi::assoc` exchange, periodic UDP Port Message refreshes
//! that can be lost, and an AP that ages out stale port-table entries?
//!
//! # Architecture
//!
//! * [`kernel`] — a hierarchical timing wheel with seeded
//!   tie-breaking ([`EventQueue`]): the pop order is a pure function of
//!   the seed, so reruns and any `--jobs` count see the same sequence.
//!   The binary-heap calendar it replaced survives as
//!   [`HeapEventQueue`], the differential baseline.
//! * [`churn`] — the client lifecycle model ([`ChurnConfig`]):
//!   presence and activity as independent alternating-renewal
//!   processes, plus refresh period, loss, port churn, and the AP's
//!   stale timeout.
//! * [`bss`] — one BSS under the kernel: a real
//!   [`AccessPoint`](hide_core::ap::AccessPoint), a ground-truth port
//!   table for wakeup classification, and a *streaming* broadcast
//!   source ([`hide_traces::stream::FrameStream`]) so the trace is
//!   never materialized.
//! * [`fleet`] — shard-by-BSS execution over [`hide_par`], merged in
//!   input order into one [`Recorder`](hide_obs::Recorder) aggregate;
//!   the metrics JSON is byte-identical at any parallelism.
//!
//! # Tracing and provenance
//!
//! [`FleetConfig::try_run_traced_with_jobs`] additionally streams every
//! shard kernel's structured events (DTIM boundaries, refreshes lost
//! and applied, port churn, expiries, per-client wake decisions) into
//! a bounded [`FlightRecorder`](hide_obs::FlightRecorder), merged in
//! input order so the exported log is byte-identical at any `--jobs`.
//! The engine attributes every missed and spurious wakeup to its
//! causal event online (lost refresh, staleness expiry, or port-churn
//! race) — the per-cause counters land in the `hide-metrics/1`
//! artifact whether or not tracing is on, and
//! [`hide_obs::provenance::analyze`] re-derives the same attribution
//! from the event log as a cross-check.
//!
//! # Example
//!
//! ```
//! use hide_fleet::{ChurnConfig, FleetConfig};
//!
//! let cfg = FleetConfig {
//!     bss_count: 2,
//!     clients_per_bss: 4,
//!     duration_secs: 5.0,
//!     ..FleetConfig::default()
//! };
//! let result = cfg.try_run_with_jobs(1).expect("valid config");
//! assert!(result.report.associations > 0);
//! // Loss-free refreshes mean no missed wakeups, ever.
//! assert_eq!(result.report.missed_wakeups, 0);
//! # let _ = ChurnConfig::default();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bss;
pub mod churn;
pub mod error;
pub mod fleet;
pub mod kernel;
pub mod profile;

pub use bss::BssReport;
pub use churn::ChurnConfig;
pub use error::FleetError;
pub use fleet::{FleetConfig, FleetResult, StreamExportConfig, StreamSinks, StreamedFleetResult};
pub use hide_policy::{ScheduleConfig, WakePolicy};
pub use kernel::{derive_seed, EventQueue, HeapEventQueue};
pub use profile::{FleetStage, NoopProfiler, StageProfile, StageProfiler};
