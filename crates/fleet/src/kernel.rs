//! The discrete-event kernel: a binary-heap calendar queue with seeded
//! tie-breaking.
//!
//! Events pop in ascending time order ([`f64::total_cmp`], so the order
//! is total even for pathological times). Two events at exactly the
//! same time are ordered by a per-event *tie key* drawn from a seeded
//! SplitMix64 generator at scheduling time, with the monotone schedule
//! sequence number as the final tiebreak. The effect: simultaneous
//! events interleave pseudo-randomly (no structural bias toward, say,
//! DTIM-before-refresh), yet the whole ordering is a pure function of
//! the seed and the schedule calls — reruns and any `--jobs` count see
//! the identical event sequence.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// SplitMix64 step — the same mixer the vendored rand crate uses to
/// spread seeds; good enough for tie keys and cheap per call.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a decorrelated child seed from a base seed and an index —
/// how the fleet gives every BSS its own RNG stream.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut state = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut state)
}

/// One scheduled entry. Ordering is (time, tie, seq) ascending; the
/// payload never participates, so `E` needs no trait bounds.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: f64,
    tie: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.tie.cmp(&self.tie))
            .then(other.seq.cmp(&self.seq))
    }
}

/// A deterministic event calendar.
///
/// # Example
///
/// ```
/// use hide_fleet::kernel::EventQueue;
///
/// let mut q = EventQueue::with_seed(7);
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    tie_state: u64,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue whose tie-breaking stream derives from
    /// `seed`.
    pub fn with_seed(seed: u64) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            tie_state: seed ^ 0x6a09_e667_f3bc_c908,
            popped: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics when `time` is NaN — a NaN deadline is always a caller
    /// bug, and `total_cmp` would otherwise sort it after infinity and
    /// silently starve the event.
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let tie = splitmix64(&mut self.tie_state);
        self.heap.push(Scheduled {
            time,
            tie,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let s = self.heap.pop()?;
        self.popped += 1;
        Some((s.time, s.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of events currently scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events popped so far (the kernel's work measure).
    pub fn popped(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::with_seed(1);
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.schedule(t, t as u32);
        }
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(q.popped(), 5);
    }

    #[test]
    fn same_seed_same_tie_order() {
        let order = |seed: u64| -> Vec<u32> {
            let mut q = EventQueue::with_seed(seed);
            for i in 0..64u32 {
                q.schedule(1.0, i);
            }
            std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect()
        };
        assert_eq!(order(9), order(9));
        // Not schedule order: the tie key shuffles simultaneous events.
        assert_ne!(order(9), (0..64).collect::<Vec<u32>>());
    }

    #[test]
    fn different_seeds_shuffle_ties_differently() {
        let order = |seed: u64| -> Vec<u32> {
            let mut q = EventQueue::with_seed(seed);
            for i in 0..64u32 {
                q.schedule(1.0, i);
            }
            std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect()
        };
        assert_ne!(order(1), order(2));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::with_seed(0);
        q.schedule(10.0, "b");
        q.schedule(1.0, "a");
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, "a")));
        q.schedule(5.0, "c");
        assert_eq!(q.pop(), Some((5.0, "c")));
        assert_eq!(q.pop(), Some((10.0, "b")));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let mut q = EventQueue::with_seed(0);
        q.schedule(f64::NAN, ());
    }

    #[test]
    fn derive_seed_decorrelates() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(42, 0));
    }
}
