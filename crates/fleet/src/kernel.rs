//! The discrete-event kernel: a hierarchical timing wheel with seeded
//! tie-breaking, plus the binary-heap calendar it replaced (kept as the
//! differential baseline, mirroring how the port table kept its BTree).
//!
//! Events pop in ascending time order ([`f64::total_cmp`], so the order
//! is total even for pathological times). Two events at exactly the
//! same time are ordered by a per-event *tie key* drawn from a seeded
//! SplitMix64 generator at scheduling time, with the monotone schedule
//! sequence number as the final tiebreak. The effect: simultaneous
//! events interleave pseudo-randomly (no structural bias toward, say,
//! DTIM-before-refresh), yet the whole ordering is a pure function of
//! the seed and the schedule calls — reruns and any `--jobs` count see
//! the identical event sequence.
//!
//! # The timing wheel
//!
//! [`EventQueue`] stores events in a 64-rung hierarchy keyed by the
//! monotone bit-image of the event time (the same transformation
//! `total_cmp` sorts by, so key order *is* time order). Rung `r` holds
//! every pending event whose key first differs from the wheel's
//! *floor* — the key of the most recently popped event — at bit
//! `r - 1`: the bottom rungs resolve near-future times at full
//! precision while a single top rung coarsely banks the far future,
//! which is exactly the hierarchical-wheel/ladder-queue shape. A
//! `schedule` appends to its rung in O(1); a `pop` drains the lowest
//! occupied rung, re-laddering its events against the new floor (each
//! event only ever moves to a strictly lower rung, so the amortized
//! cost per event is O(1) with a worst case of 64 moves). Rung 0 holds
//! events at *exactly* the floor time, kept sorted by `(tie, seq)` so
//! simultaneous events still pop in the seeded order.
//!
//! # Determinism contract
//!
//! The wheel pops the identical `(time, tie, seq)` sequence as
//! [`HeapEventQueue`]: the key image preserves `total_cmp` order,
//! equal times always share a rung (so the `(tie, seq)` sort is total
//! within them), and events scheduled before the floor fall back to a
//! small heap that, holding strictly earlier keys, always pops first.
//! `crates/fleet/tests/proptest_kernel.rs` pins the equivalence as an
//! executable spec; because the pop order is provably unchanged, every
//! `hide-metrics/1` artifact produced through the kernel is
//! byte-identical to the heap era's.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// SplitMix64 step — the same mixer the vendored rand crate uses to
/// spread seeds; good enough for tie keys and cheap per call.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a decorrelated child seed from a base seed and an index —
/// how the fleet gives every BSS its own RNG stream.
pub fn derive_seed(base: u64, index: u64) -> u64 {
    let mut state = base ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    splitmix64(&mut state)
}

/// The monotone bit-image of a time: unsigned keys that compare exactly
/// like [`f64::total_cmp`] (sign bit flipped for positives, all bits
/// flipped for negatives). Equal times map to equal keys and vice
/// versa, so bucketing by key can never split a tie group.
#[inline]
fn time_key(time: f64) -> u64 {
    let bits = time.to_bits();
    if bits >> 63 == 1 {
        !bits
    } else {
        bits | (1 << 63)
    }
}

/// One scheduled entry. Ordering is (time, tie, seq) ascending; the
/// payload never participates, so `E` needs no trait bounds.
#[derive(Debug, Clone)]
struct Scheduled<E> {
    time: f64,
    tie: u64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.tie.cmp(&self.tie))
            .then(other.seq.cmp(&self.seq))
    }
}

/// Panics unless `time` is finite — shared schedule-time validation.
///
/// A NaN deadline is always a caller bug (`total_cmp` would sort it
/// after infinity), and an infinite one is the same bug in disguise:
/// `+inf` sorts last and silently starves the event instead of failing
/// loudly, `-inf` jumps the whole queue.
#[inline]
fn check_finite(time: f64) {
    assert!(
        time.is_finite(),
        "event time must be finite (got {time}); NaN and infinite deadlines \
         would starve or hijack the queue"
    );
}

/// Rungs in the wheel hierarchy: one per key bit, plus rung 0 for
/// events at exactly the floor time.
const RUNGS: usize = 65;

/// A deterministic event calendar — the hierarchical timing wheel.
///
/// # Example
///
/// ```
/// use hide_fleet::kernel::EventQueue;
///
/// let mut q = EventQueue::with_seed(7);
/// q.schedule(2.0, "late");
/// q.schedule(1.0, "early");
/// assert_eq!(q.pop(), Some((1.0, "early")));
/// assert_eq!(q.pop(), Some((2.0, "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    /// `rungs[0]` — events at exactly the floor key, sorted descending
    /// by `(tie, seq)` so the next pop is `pop()` off the back.
    /// `rungs[r]` for `r ≥ 1` — unsorted events whose key first
    /// differs from the floor at bit `r - 1`.
    rungs: Vec<Vec<Scheduled<E>>>,
    /// One bit per rung: which rungs are non-empty (bit `r` ⇔
    /// `rungs[r]`), so finding the lowest occupied rung is one
    /// `trailing_zeros`.
    occupied: u128,
    /// Key of the most recently popped wheel event; every wheel-held
    /// key is ≥ the floor.
    floor: u64,
    /// Cold fallback for events scheduled *before* the floor (a pop
    /// from the past). Their keys are strictly below every wheel key,
    /// so they always pop first — preserving min-order exactly.
    overdue: BinaryHeap<Scheduled<E>>,
    len: usize,
    seq: u64,
    tie_state: u64,
    popped: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue whose tie-breaking stream derives from
    /// `seed`.
    pub fn with_seed(seed: u64) -> Self {
        EventQueue {
            rungs: (0..RUNGS).map(|_| Vec::new()).collect(),
            occupied: 0,
            floor: 0,
            overdue: BinaryHeap::new(),
            len: 0,
            seq: 0,
            tie_state: seed ^ 0x6a09_e667_f3bc_c908,
            popped: 0,
        }
    }

    /// The rung for `key` relative to the current floor: 0 when equal,
    /// otherwise one past the highest differing bit.
    #[inline]
    fn rung_of(&self, key: u64) -> usize {
        (64 - (key ^ self.floor).leading_zeros()) as usize
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics when `time` is not finite — a NaN deadline is always a
    /// caller bug, and `total_cmp` would sort `+inf` after every real
    /// time and silently starve the event (`-inf` would hijack the
    /// queue head instead).
    pub fn schedule(&mut self, time: f64, event: E) {
        check_finite(time);
        let tie = splitmix64(&mut self.tie_state);
        let entry = Scheduled {
            time,
            tie,
            seq: self.seq,
            event,
        };
        self.seq += 1;
        self.len += 1;
        let key = time_key(time);
        if key < self.floor {
            self.overdue.push(entry);
            return;
        }
        self.insert_wheel(key, entry);
    }

    /// Places an entry (whose key is ≥ the floor) into its rung.
    #[inline]
    fn insert_wheel(&mut self, key: u64, entry: Scheduled<E>) {
        let r = self.rung_of(key);
        if r == 0 {
            // Same time as the floor: keep the rung sorted descending
            // by (tie, seq) so the minimum stays at the back.
            let rung = &mut self.rungs[0];
            let at = rung.partition_point(|e| (e.tie, e.seq) > (entry.tie, entry.seq));
            rung.insert(at, entry);
        } else {
            self.rungs[r].push(entry);
        }
        self.occupied |= 1 << r;
    }

    /// Drains the lowest occupied rung (which must be ≥ 1), advances
    /// the floor to its minimum key and re-ladders its events — each
    /// lands on a strictly lower rung, with the minimum's tie group
    /// arriving sorted in rung 0.
    fn reladder(&mut self, r: usize) {
        let batch = std::mem::take(&mut self.rungs[r]);
        self.occupied &= !(1 << r);
        // The new floor is the batch's minimum (time, tie, seq) key;
        // every key in the rung shares the bits above r-1, so each
        // event re-buckets strictly below r and progress is guaranteed.
        let min_key = batch
            .iter()
            .map(|e| time_key(e.time))
            .min()
            .expect("reladder only runs on an occupied rung");
        self.floor = min_key;
        for entry in batch {
            let key = time_key(entry.time);
            debug_assert!(self.rung_of(key) < r);
            self.insert_wheel(key, entry);
        }
    }

    /// Removes and returns the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.pop_keyed().map(|(time, _, _, event)| (time, event))
    }

    /// [`EventQueue::pop`] including the deterministic ordering keys:
    /// `(time, tie, seq, event)`. The tie/seq exposure exists so
    /// differential tests and benches can pin the full pop order
    /// against [`HeapEventQueue`].
    pub fn pop_keyed(&mut self) -> Option<(f64, u64, u64, E)> {
        // Overdue events hold keys strictly below the floor — and the
        // wheel holds only keys ≥ floor — so when any exist they are
        // the global minimum and must drain first.
        if let Some(s) = self.overdue.pop() {
            self.len -= 1;
            self.popped += 1;
            return Some((s.time, s.tie, s.seq, s.event));
        }
        if self.occupied == 0 {
            return None;
        }
        let lowest = self.occupied.trailing_zeros() as usize;
        if lowest != 0 {
            self.reladder(lowest);
        }
        let rung = &mut self.rungs[0];
        let s = rung.pop().expect("rung 0 holds the re-laddered minimum");
        if rung.is_empty() {
            self.occupied &= !1;
        }
        self.len -= 1;
        self.popped += 1;
        Some((s.time, s.tie, s.seq, s.event))
    }

    /// Time of the next event without removing it.
    ///
    /// Peeking does not re-ladder (it takes `&self`), so when the next
    /// event sits in a higher rung this scans that rung for its
    /// minimum — O(rung length), fine for the occasional inspection
    /// the engines make of it.
    pub fn peek_time(&self) -> Option<f64> {
        let overdue = self.overdue.peek().map(|s| s.time);
        if overdue.is_some() {
            return overdue;
        }
        if self.occupied == 0 {
            return None;
        }
        let lowest = self.occupied.trailing_zeros() as usize;
        if lowest == 0 {
            return self.rungs[0].last().map(|s| s.time);
        }
        self.rungs[lowest]
            .iter()
            .map(|s| s.time)
            .min_by(f64::total_cmp)
    }

    /// Number of events currently scheduled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total events popped so far (the kernel's work measure).
    pub fn popped(&self) -> u64 {
        self.popped
    }
}

/// The binary-heap calendar queue the timing wheel replaced, retained
/// verbatim as the differential baseline: same seeded tie stream, same
/// `(time, tie, seq)` contract, same API. `benches/event_queue_scale`
/// measures the swap and the kernel proptest pins pop-order
/// equivalence — the same keep-the-old-structure idiom as
/// [`BTreePortTable`](hide_core::ap::BTreePortTable).
#[derive(Debug, Clone)]
pub struct HeapEventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    seq: u64,
    tie_state: u64,
    popped: u64,
}

impl<E> HeapEventQueue<E> {
    /// Creates an empty queue whose tie-breaking stream derives from
    /// `seed`. Seed-compatible with [`EventQueue::with_seed`].
    pub fn with_seed(seed: u64) -> Self {
        HeapEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            tie_state: seed ^ 0x6a09_e667_f3bc_c908,
            popped: 0,
        }
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics when `time` is not finite, matching
    /// [`EventQueue::schedule`].
    pub fn schedule(&mut self, time: f64, event: E) {
        check_finite(time);
        let tie = splitmix64(&mut self.tie_state);
        self.heap.push(Scheduled {
            time,
            tie,
            seq: self.seq,
            event,
        });
        self.seq += 1;
    }

    /// Removes and returns the earliest event as `(time, event)`.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        self.pop_keyed().map(|(time, _, _, event)| (time, event))
    }

    /// [`HeapEventQueue::pop`] including the `(time, tie, seq)` keys.
    pub fn pop_keyed(&mut self) -> Option<(f64, u64, u64, E)> {
        let s = self.heap.pop()?;
        self.popped += 1;
        Some((s.time, s.tie, s.seq, s.event))
    }

    /// Time of the next event without removing it.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Number of events currently scheduled.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events popped so far (the kernel's work measure).
    pub fn popped(&self) -> u64 {
        self.popped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_key_is_monotone_in_total_cmp() {
        let times = [
            f64::MIN,
            -1e300,
            -2.0,
            -f64::MIN_POSITIVE,
            -0.0,
            0.0,
            f64::MIN_POSITIVE,
            1.0,
            1.0000000000000002,
            1e300,
            f64::MAX,
        ];
        for pair in times.windows(2) {
            assert!(pair[0].total_cmp(&pair[1]) == Ordering::Less);
            assert!(
                time_key(pair[0]) < time_key(pair[1]),
                "key order broke between {} and {}",
                pair[0],
                pair[1]
            );
        }
        // Equal times map to equal keys, so ties cannot split rungs.
        assert_eq!(time_key(3.25), time_key(3.25));
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::with_seed(1);
        for &t in &[5.0, 1.0, 3.0, 2.0, 4.0] {
            q.schedule(t, t as u32);
        }
        let times: Vec<f64> = std::iter::from_fn(|| q.pop().map(|(t, _)| t)).collect();
        assert_eq!(times, vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(q.popped(), 5);
    }

    #[test]
    fn same_seed_same_tie_order() {
        let order = |seed: u64| -> Vec<u32> {
            let mut q = EventQueue::with_seed(seed);
            for i in 0..64u32 {
                q.schedule(1.0, i);
            }
            std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect()
        };
        assert_eq!(order(9), order(9));
        // Not schedule order: the tie key shuffles simultaneous events.
        assert_ne!(order(9), (0..64).collect::<Vec<u32>>());
    }

    #[test]
    fn different_seeds_shuffle_ties_differently() {
        let order = |seed: u64| -> Vec<u32> {
            let mut q = EventQueue::with_seed(seed);
            for i in 0..64u32 {
                q.schedule(1.0, i);
            }
            std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect()
        };
        assert_ne!(order(1), order(2));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::with_seed(0);
        q.schedule(10.0, "b");
        q.schedule(1.0, "a");
        assert_eq!(q.peek_time(), Some(1.0));
        assert_eq!(q.pop(), Some((1.0, "a")));
        q.schedule(5.0, "c");
        assert_eq!(q.pop(), Some((5.0, "c")));
        assert_eq!(q.pop(), Some((10.0, "b")));
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn zero_delay_reschedule_lands_in_the_tie_group() {
        let mut q = EventQueue::with_seed(3);
        q.schedule(1.0, "first");
        q.schedule(2.0, "later");
        let (now, _) = q.pop().unwrap();
        // A handler rescheduling at its own pop time must sort against
        // any pending same-time events by (tie, seq), not jump or lag.
        q.schedule(now, "again");
        assert_eq!(q.pop(), Some((1.0, "again")));
        assert_eq!(q.pop(), Some((2.0, "later")));
    }

    #[test]
    fn scheduling_before_the_floor_still_pops_first() {
        let mut q = EventQueue::with_seed(5);
        q.schedule(10.0, "b");
        assert_eq!(q.pop(), Some((10.0, "b")));
        // The wheel floor sits at t=10; a past schedule takes the
        // overdue path and must still pop before anything pending.
        q.schedule(3.0, "past");
        q.schedule(11.0, "future");
        assert_eq!(q.peek_time(), Some(3.0));
        assert_eq!(q.pop(), Some((3.0, "past")));
        assert_eq!(q.pop(), Some((11.0, "future")));
    }

    #[test]
    fn far_horizon_and_dense_times_mix() {
        let mut q = EventQueue::with_seed(11);
        let times = [1e-9, 7.25e8, 3.0, 3.0000000000000004, 1e12, 0.5, 3.0];
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut popped: Vec<f64> = Vec::new();
        while let Some((t, _)) = q.pop() {
            popped.push(t);
        }
        let mut want = times.to_vec();
        want.sort_by(f64::total_cmp);
        assert_eq!(popped, want);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_time_rejected() {
        let mut q = EventQueue::with_seed(0);
        q.schedule(f64::NAN, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn positive_infinity_rejected() {
        // Pre-wheel, +inf was accepted and sorted last forever — a
        // silently starved event. Now it fails at the call site.
        let mut q = EventQueue::with_seed(0);
        q.schedule(f64::INFINITY, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_infinity_rejected() {
        let mut q = EventQueue::with_seed(0);
        q.schedule(f64::NEG_INFINITY, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn heap_baseline_rejects_non_finite_too() {
        let mut q = HeapEventQueue::with_seed(0);
        q.schedule(f64::INFINITY, ());
    }

    #[test]
    fn wheel_matches_heap_on_a_mixed_workload() {
        // A compact inline differential check; the proptest owns the
        // exhaustive version.
        let mut wheel = EventQueue::with_seed(42);
        let mut heap = HeapEventQueue::with_seed(42);
        let mut t = 0.25f64;
        for i in 0..200u32 {
            let time = if i % 7 == 0 { 1e9 + t } else { t };
            wheel.schedule(time, i);
            heap.schedule(time, i);
            t += if i % 3 == 0 { 0.0 } else { 0.125 };
            if i % 5 == 4 {
                assert_eq!(wheel.pop_keyed(), heap.pop_keyed());
            }
        }
        loop {
            let a = wheel.pop_keyed();
            let b = heap.pop_keyed();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(wheel.popped(), heap.popped());
    }

    #[test]
    fn derive_seed_decorrelates() {
        let a = derive_seed(42, 0);
        let b = derive_seed(42, 1);
        let c = derive_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, derive_seed(42, 0));
    }
}
