//! Deterministic parallel map for the experiment engine.
//!
//! The experiment matrix — (trace, device, solution, fraction) cells
//! and the `ext` parameter sweeps — is embarrassingly parallel: every
//! cell is an independent, seeded, pure computation. This module fans
//! cells out over scoped OS threads and reassembles results **in input
//! order**, so parallel output is byte-identical to the sequential run
//! regardless of the job count or scheduling.
//!
//! Design rules the rest of the workspace relies on:
//!
//! * Results are collected `(index, value)` and sorted by index before
//!   returning — ordering never depends on thread timing.
//! * Cell closures must be pure functions of their input (all RNG is
//!   seeded per cell); nothing here synchronizes shared mutable state.
//! * `jobs = 1` (or a single-item input) short-circuits to a plain
//!   sequential loop on the calling thread, which keeps stack traces
//!   and determinism trivially intact.
//!
//! The job count is process-global (set once from `--jobs` /
//! `HIDE_JOBS`), so deep call chains don't need a threading parameter.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-global job count; 0 means "auto" (available parallelism).
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-global job count used by [`par_map`].
///
/// `0` restores auto detection. Typically called once at startup from
/// a `--jobs N` flag; the `HIDE_JOBS` environment variable is the
/// fallback for harnesses that can't pass flags (e.g. `cargo bench`).
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::SeqCst);
}

/// The job count [`par_map`] will use: the value set by
/// [`set_default_jobs`], else `HIDE_JOBS`, else available parallelism.
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::SeqCst) {
        0 => std::env::var("HIDE_JOBS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            }),
        n => n,
    }
}

/// Maps `f` over `items` with the process-global job count, preserving
/// input order in the output.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_jobs(default_jobs(), items, |_, item| f(item))
}

/// Like [`par_map`], but the closure also receives the item index —
/// handy for deriving per-cell seeds.
pub fn par_map_indexed<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_jobs(default_jobs(), items, f)
}

/// Maps `f` over `items` on exactly `jobs` worker threads (clamped to
/// the item count; `jobs <= 1` runs inline). Output order equals input
/// order: workers pull indices from a shared counter, tag each result
/// with its index, and the merged results are sorted by index.
pub fn par_map_jobs<T, R, F>(jobs: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let jobs = jobs.max(1).min(n.max(1));
    if jobs == 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    let buckets: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    });

    let mut indexed: Vec<(usize, R)> = buckets.into_iter().flatten().collect();
    indexed.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), n);
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..1000).collect();
        let out = par_map_jobs(7, &items, |i, &v| {
            assert_eq!(i as u64, v);
            v * 3
        });
        assert_eq!(out, items.iter().map(|v| v * 3).collect::<Vec<_>>());
    }

    #[test]
    fn job_counts_agree() {
        let items: Vec<u32> = (0..257).collect();
        let work = |_: usize, &v: &u32| {
            // Non-trivial per-item work so scheduling actually varies.
            (0..v % 97).fold(v as u64, |acc, x| {
                acc.wrapping_mul(31).wrapping_add(x as u64)
            })
        };
        let seq = par_map_jobs(1, &items, work);
        for jobs in [2, 3, 8, 64] {
            assert_eq!(par_map_jobs(jobs, &items, work), seq, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = vec![];
        assert!(par_map_jobs(8, &empty, |_, &v| v).is_empty());
        assert_eq!(par_map_jobs(8, &[5u8], |_, &v| v + 1), vec![6]);
    }

    #[test]
    fn default_jobs_is_positive() {
        assert!(default_jobs() >= 1);
    }
}
