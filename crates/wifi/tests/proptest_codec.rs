//! Property-based tests for the 802.11 wire codecs.

use hide_wifi::assoc::{AssociationRequest, AssociationResponse, Disassociation};
use hide_wifi::bitmap::PartialVirtualBitmap;
use hide_wifi::frame::{Ack, AnyFrame, Beacon, BroadcastDataFrame, PsPoll, UdpPortMessage};
use hide_wifi::ie::{Btim, InformationElement, OpenUdpPorts, Tim};
use hide_wifi::mac::{Aid, MacAddr, MAX_AID};
use hide_wifi::udp::UdpDatagram;
use proptest::collection::vec;
use proptest::prelude::*;

fn aid_strategy() -> impl Strategy<Value = Aid> {
    (1u16..=MAX_AID).prop_map(|v| Aid::new(v).expect("in range"))
}

fn bitmap_strategy() -> impl Strategy<Value = PartialVirtualBitmap> {
    vec(aid_strategy(), 0..64).prop_map(|aids| aids.into_iter().collect())
}

fn mac_strategy() -> impl Strategy<Value = MacAddr> {
    any::<u32>().prop_map(MacAddr::station)
}

/// SSIDs are carried in a length-prefixed element (≤ 255 bytes) and the
/// parser decodes them as UTF-8, so the strategy draws printable ASCII
/// that fits one element.
fn ssid_strategy() -> impl Strategy<Value = String> {
    const CHARSET: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 ._-";
    vec(0usize..CHARSET.len(), 0..32)
        .prop_map(|idxs| idxs.into_iter().map(|i| CHARSET[i] as char).collect())
}

proptest! {
    #[test]
    fn bitmap_trim_expand_round_trip(bitmap in bitmap_strategy()) {
        let trimmed = bitmap.trim();
        let back = PartialVirtualBitmap::from_trimmed(&trimmed).unwrap();
        prop_assert_eq!(back, bitmap);
    }

    #[test]
    fn bitmap_trim_offset_always_even(bitmap in bitmap_strategy()) {
        prop_assert_eq!(bitmap.trim().offset() % 2, 0);
    }

    #[test]
    fn trimmed_is_set_agrees_with_full(bitmap in bitmap_strategy(), probe in aid_strategy()) {
        let trimmed = bitmap.trim();
        prop_assert_eq!(trimmed.is_set(probe), bitmap.is_set(probe));
    }

    #[test]
    fn bitmap_iter_yields_exactly_set_bits(aids in vec(aid_strategy(), 0..32)) {
        let bitmap: PartialVirtualBitmap = aids.iter().copied().collect();
        let mut expected: Vec<Aid> = aids.clone();
        expected.sort();
        expected.dedup();
        let collected: Vec<Aid> = bitmap.iter().collect();
        prop_assert_eq!(collected, expected);
    }

    #[test]
    fn btim_body_round_trip(bitmap in bitmap_strategy()) {
        let btim = Btim::new(bitmap);
        let body = btim.encode_body();
        prop_assert_eq!(body.len(), btim.body_len());
        let back = Btim::decode_body(&body).unwrap();
        prop_assert_eq!(back, btim);
    }

    #[test]
    fn tim_body_round_trip(
        bitmap in bitmap_strategy(),
        count in 0u8..=10,
        period in 1u8..=10,
        bcast in any::<bool>(),
    ) {
        let tim = Tim::new(count, period, bcast, bitmap);
        let back = Tim::decode_body(&tim.encode_body()).unwrap();
        prop_assert_eq!(back, tim);
    }

    #[test]
    fn open_udp_ports_round_trip(ports in vec(any::<u16>(), 0..=OpenUdpPorts::MAX_PORTS)) {
        let element = OpenUdpPorts::new(ports.clone()).unwrap();
        let back = OpenUdpPorts::decode_body(&element.encode_body()).unwrap();
        prop_assert_eq!(back.ports(), &ports[..]);
    }

    #[test]
    fn udp_datagram_round_trip(
        src in any::<[u8; 4]>(),
        dst in any::<[u8; 4]>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        payload in vec(any::<u8>(), 0..512),
    ) {
        let dgram = UdpDatagram::new(src, dst, sport, dport, payload);
        let bytes = dgram.to_bytes();
        prop_assert_eq!(UdpDatagram::peek_dst_port(&bytes).unwrap(), dport);
        let parsed = UdpDatagram::parse(&bytes).unwrap();
        prop_assert_eq!(parsed, dgram);
    }

    #[test]
    fn udp_parse_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..128)) {
        let _ = UdpDatagram::parse(&bytes);
        let _ = UdpDatagram::peek_dst_port(&bytes);
    }

    #[test]
    fn beacon_round_trip(
        bitmap in bitmap_strategy(),
        unicast in bitmap_strategy(),
        ts in any::<u64>(),
        interval in 1u16..1000,
        count in 0u8..4,
        bcast in any::<bool>(),
    ) {
        let beacon = Beacon::builder(MacAddr::station(0))
            .timestamp_us(ts)
            .beacon_interval_tu(interval)
            .tim(Tim::new(count, 3, bcast, unicast))
            .element(InformationElement::Btim(Btim::new(bitmap)))
            .build();
        let bytes = beacon.to_bytes();
        prop_assert_eq!(bytes.len(), beacon.len_bytes());
        let parsed = Beacon::parse(&bytes).unwrap();
        prop_assert_eq!(parsed, beacon);
    }

    #[test]
    fn beacon_parse_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..96)) {
        let _ = Beacon::parse(&bytes);
    }

    #[test]
    fn udp_port_message_round_trip(
        ports in vec(any::<u16>(), 0..120),
        seq in 0u16..4096,
        client_idx in 1u32..1000,
    ) {
        let msg = UdpPortMessage::new(
            MacAddr::station(client_idx),
            MacAddr::station(0),
            ports.clone(),
        )
        .unwrap()
        .with_seq(seq);
        let bytes = msg.to_bytes();
        prop_assert_eq!(bytes.len(), msg.len_bytes());
        let parsed = UdpPortMessage::parse(&bytes).unwrap();
        prop_assert_eq!(parsed.ports(), &ports[..]);
        prop_assert_eq!(parsed.seq(), seq);
    }

    #[test]
    fn broadcast_frame_round_trip(
        dport in any::<u16>(),
        payload in vec(any::<u8>(), 0..256),
        more in any::<bool>(),
    ) {
        let dgram = UdpDatagram::new([10, 0, 0, 1], [255; 4], 5000, dport, payload);
        let frame = BroadcastDataFrame::new(MacAddr::station(0), dgram, more);
        let parsed = BroadcastDataFrame::parse(&frame.to_bytes()).unwrap();
        prop_assert_eq!(parsed.udp_dst_port().unwrap(), dport);
        prop_assert_eq!(parsed.more_data(), more);
    }

    #[test]
    fn element_stream_round_trip(
        bitmap in bitmap_strategy(),
        ports in vec(any::<u16>(), 0..50),
        raw in vec(any::<u8>(), 0..40),
    ) {
        let elements = vec![
            InformationElement::Btim(Btim::new(bitmap)),
            InformationElement::OpenUdpPorts(OpenUdpPorts::new(ports).unwrap()),
            InformationElement::Raw(hide_wifi::ie::RawElement { id: 99, body: raw }),
        ];
        let mut buf = Vec::new();
        for e in &elements {
            e.encode(&mut buf);
        }
        let decoded = InformationElement::decode_all(&buf).unwrap();
        prop_assert_eq!(decoded, elements);
    }

    #[test]
    fn association_request_round_trip(
        client in mac_strategy(),
        ap in mac_strategy(),
        ssid in ssid_strategy(),
        listen_interval in any::<u16>(),
        hide in any::<bool>(),
    ) {
        let mut req = AssociationRequest::new(client, ap, ssid)
            .with_listen_interval(listen_interval);
        if hide {
            req = req.with_hide_support();
        }
        let parsed = AssociationRequest::parse(&req.to_bytes()).unwrap();
        prop_assert_eq!(parsed, req);
    }

    #[test]
    fn association_response_success_round_trip(
        client in mac_strategy(),
        ap in mac_strategy(),
        aid in aid_strategy(),
    ) {
        let resp = AssociationResponse::success(ap, client, aid);
        let parsed = AssociationResponse::parse(&resp.to_bytes()).unwrap();
        prop_assert_eq!(parsed, resp);
        prop_assert!(parsed.is_success());
        prop_assert_eq!(parsed.aid(), Some(aid));
    }

    #[test]
    fn association_response_denial_round_trip(
        client in mac_strategy(),
        ap in mac_strategy(),
        status in 1u16..=1024,
    ) {
        let resp = AssociationResponse::denied(ap, client, status);
        let parsed = AssociationResponse::parse(&resp.to_bytes()).unwrap();
        prop_assert_eq!(parsed, resp);
        prop_assert!(!parsed.is_success());
        prop_assert_eq!(parsed.aid(), None);
    }

    #[test]
    fn disassociation_round_trip(
        from in mac_strategy(),
        to in mac_strategy(),
        reason in any::<u16>(),
    ) {
        let notice = Disassociation::new(from, to, reason);
        let parsed = Disassociation::parse(&notice.to_bytes()).unwrap();
        prop_assert_eq!(parsed, notice);
    }

    #[test]
    fn any_frame_reencodes_identically(
        client in mac_strategy(),
        ap in mac_strategy(),
        bitmap in bitmap_strategy(),
        ports in vec(any::<u16>(), 0..100),
        payload in vec(any::<u8>(), 0..128),
        aid in aid_strategy(),
        ssid in ssid_strategy(),
        which in 0usize..8,
    ) {
        // One wire image per subtype; parse-then-re-encode must be the
        // identity on all of them (the daemon relies on this to relay
        // frames it has routed without mutating them).
        let wire: Vec<u8> = match which {
            0 => Beacon::builder(ap)
                .tim(Tim::new(0, 1, false, bitmap))
                .element(InformationElement::Btim(Btim::new(bitmap)))
                .build()
                .to_bytes(),
            1 => UdpPortMessage::new(client, ap, ports).unwrap().to_bytes(),
            2 => Ack::new(client).to_bytes(),
            3 => PsPoll::new(aid, ap, client).to_bytes(),
            4 => BroadcastDataFrame::new(
                ap,
                UdpDatagram::new([10, 0, 0, 1], [255; 4], 5000, 1900, payload),
                false,
            )
            .to_bytes(),
            5 => AssociationRequest::new(client, ap, ssid).with_hide_support().to_bytes(),
            6 => AssociationResponse::success(ap, client, aid).to_bytes(),
            _ => Disassociation::new(client, ap, 8).to_bytes(),
        };
        let frame = AnyFrame::parse(&wire).unwrap();
        prop_assert_eq!(frame.to_bytes(), wire);
    }

    #[test]
    fn any_frame_parse_never_panics_on_garbage(bytes in vec(any::<u8>(), 0..160)) {
        if let Ok(frame) = AnyFrame::parse(&bytes) {
            // Garbage may parse non-canonically (e.g. ignored trailing
            // bytes), so byte identity only holds after one re-encode:
            // to_bytes must normalize to a fixed point.
            let canon = frame.to_bytes();
            let reparsed = AnyFrame::parse(&canon).unwrap();
            prop_assert_eq!(reparsed.to_bytes(), canon);
        }
    }

    #[test]
    fn truncated_assoc_frames_never_panic(
        client in mac_strategy(),
        ap in mac_strategy(),
        ssid in ssid_strategy(),
        cut in 0usize..24,
    ) {
        let req = AssociationRequest::new(client, ap, ssid).with_hide_support();
        let bytes = req.to_bytes();
        let cut = cut.min(bytes.len());
        // Parsing any prefix returns an error or a frame — never panics.
        let _ = AssociationRequest::parse(&bytes[..cut]);
        let resp = AssociationResponse::success(ap, client, Aid::new(1).unwrap());
        let bytes = resp.to_bytes();
        let cut = cut.min(bytes.len());
        let _ = AssociationResponse::parse(&bytes[..cut]);
    }
}
