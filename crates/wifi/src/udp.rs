//! LLC/SNAP + IPv4 + UDP payload codec.
//!
//! HIDE differentiates broadcast frames by their UDP destination port, so
//! the AP must look inside each buffered broadcast data frame: past the
//! 802.2 LLC/SNAP header, the IPv4 header, and into the UDP header. This
//! module encodes and decodes exactly that stack, with IPv4 header
//! checksums computed and verified.

use crate::error::WifiError;

/// LLC/SNAP header length in bytes (AA AA 03 + OUI + EtherType).
pub const LLC_SNAP_LEN: usize = 8;
/// Minimum IPv4 header length in bytes (no options).
pub const IPV4_HEADER_LEN: usize = 20;
/// UDP header length in bytes.
pub const UDP_HEADER_LEN: usize = 8;
/// Total overhead bytes before UDP payload in a UDP-padded frame body.
pub const UDP_STACK_OVERHEAD: usize = LLC_SNAP_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN;

const ETHERTYPE_IPV4: u16 = 0x0800;
const IP_PROTO_UDP: u8 = 17;

/// A parsed UDP datagram carried in an 802.11 data-frame body.
///
/// # Example
///
/// ```
/// use hide_wifi::udp::UdpDatagram;
///
/// let dgram = UdpDatagram::new([192, 168, 1, 20], [255, 255, 255, 255], 5353, 5353, vec![1, 2, 3]);
/// let body = dgram.to_bytes();
/// let parsed = UdpDatagram::parse(&body)?;
/// assert_eq!(parsed.dst_port(), 5353);
/// assert_eq!(parsed.payload(), &[1, 2, 3]);
/// # Ok::<(), hide_wifi::WifiError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UdpDatagram {
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    src_port: u16,
    dst_port: u16,
    payload: Vec<u8>,
}

impl UdpDatagram {
    /// Creates a datagram.
    pub fn new(
        src_ip: [u8; 4],
        dst_ip: [u8; 4],
        src_port: u16,
        dst_port: u16,
        payload: Vec<u8>,
    ) -> Self {
        UdpDatagram {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            payload,
        }
    }

    /// Source IPv4 address.
    pub fn src_ip(&self) -> [u8; 4] {
        self.src_ip
    }

    /// Destination IPv4 address.
    pub fn dst_ip(&self) -> [u8; 4] {
        self.dst_ip
    }

    /// UDP source port.
    pub fn src_port(&self) -> u16 {
        self.src_port
    }

    /// UDP destination port — the field HIDE keys its per-client
    /// usefulness decision on.
    pub fn dst_port(&self) -> u16 {
        self.dst_port
    }

    /// UDP payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Total encoded body length (LLC/SNAP + IPv4 + UDP + payload).
    pub fn encoded_len(&self) -> usize {
        UDP_STACK_OVERHEAD + self.payload.len()
    }

    /// Encodes the datagram as an 802.11 data-frame body:
    /// LLC/SNAP, IPv4 header (with checksum), UDP header, payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_len());
        // LLC: DSAP AA, SSAP AA, control 03; SNAP: OUI 00 00 00, EtherType.
        out.extend_from_slice(&[0xaa, 0xaa, 0x03, 0x00, 0x00, 0x00]);
        out.extend_from_slice(&ETHERTYPE_IPV4.to_be_bytes());

        let total_len = (IPV4_HEADER_LEN + UDP_HEADER_LEN + self.payload.len()) as u16;
        let mut ip = [0u8; IPV4_HEADER_LEN];
        ip[0] = 0x45; // version 4, IHL 5
        ip[1] = 0; // DSCP/ECN
        ip[2..4].copy_from_slice(&total_len.to_be_bytes());
        // identification, flags, fragment offset: zero
        ip[8] = 64; // TTL
        ip[9] = IP_PROTO_UDP;
        // checksum at 10..12, filled below
        ip[12..16].copy_from_slice(&self.src_ip);
        ip[16..20].copy_from_slice(&self.dst_ip);
        let csum = ipv4_checksum(&ip);
        ip[10..12].copy_from_slice(&csum.to_be_bytes());
        out.extend_from_slice(&ip);

        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        let udp_len = (UDP_HEADER_LEN + self.payload.len()) as u16;
        out.extend_from_slice(&udp_len.to_be_bytes());
        // Compute the real UDP checksum over the pseudo-header (src,
        // dst, protocol, length) plus header and payload. It is
        // technically optional over IPv4, but real stacks fill it in.
        let csum = udp_checksum(
            self.src_ip,
            self.dst_ip,
            self.src_port,
            self.dst_port,
            udp_len,
            &self.payload,
        );
        out.extend_from_slice(&csum.to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses an 802.11 data-frame body as a UDP-padded payload.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::NotUdpPayload`] when the body is too short,
    /// is not LLC/SNAP-encapsulated IPv4, is not UDP, or carries a bad
    /// IPv4 header checksum. Frames rejected here are precisely those
    /// the paper excludes from "UDP-padded broadcast frames".
    pub fn parse(body: &[u8]) -> Result<Self, WifiError> {
        if body.len() < UDP_STACK_OVERHEAD {
            return Err(WifiError::NotUdpPayload("body shorter than headers"));
        }
        if body[0] != 0xaa || body[1] != 0xaa || body[2] != 0x03 {
            return Err(WifiError::NotUdpPayload("missing LLC/SNAP header"));
        }
        let ethertype = u16::from_be_bytes([body[6], body[7]]);
        if ethertype != ETHERTYPE_IPV4 {
            return Err(WifiError::NotUdpPayload("not IPv4"));
        }
        let ip = &body[LLC_SNAP_LEN..];
        if ip[0] >> 4 != 4 {
            return Err(WifiError::NotUdpPayload("IP version is not 4"));
        }
        let ihl = ((ip[0] & 0x0f) as usize) * 4;
        if ihl < IPV4_HEADER_LEN || ip.len() < ihl + UDP_HEADER_LEN {
            return Err(WifiError::NotUdpPayload("bad IHL"));
        }
        if ipv4_checksum_verify(&ip[..ihl]).is_err() {
            return Err(WifiError::NotUdpPayload("bad IPv4 checksum"));
        }
        if ip[9] != IP_PROTO_UDP {
            return Err(WifiError::NotUdpPayload("not UDP"));
        }
        let total_len = u16::from_be_bytes([ip[2], ip[3]]) as usize;
        if total_len < ihl + UDP_HEADER_LEN || total_len > ip.len() {
            return Err(WifiError::NotUdpPayload("bad IPv4 total length"));
        }
        let mut src_ip = [0u8; 4];
        src_ip.copy_from_slice(&ip[12..16]);
        let mut dst_ip = [0u8; 4];
        dst_ip.copy_from_slice(&ip[16..20]);

        let udp = &ip[ihl..total_len];
        let src_port = u16::from_be_bytes([udp[0], udp[1]]);
        let dst_port = u16::from_be_bytes([udp[2], udp[3]]);
        let udp_len = u16::from_be_bytes([udp[4], udp[5]]) as usize;
        if udp_len < UDP_HEADER_LEN || udp_len > udp.len() {
            return Err(WifiError::NotUdpPayload("bad UDP length"));
        }
        // A zero checksum means "not computed" (legal over IPv4);
        // otherwise it must verify.
        let stored = u16::from_be_bytes([udp[6], udp[7]]);
        if stored != 0 {
            let expected = udp_checksum(
                src_ip,
                dst_ip,
                src_port,
                dst_port,
                udp_len as u16,
                &udp[UDP_HEADER_LEN..udp_len],
            );
            if expected != stored {
                return Err(WifiError::NotUdpPayload("bad UDP checksum"));
            }
        }
        Ok(UdpDatagram {
            src_ip,
            dst_ip,
            src_port,
            dst_port,
            payload: udp[UDP_HEADER_LEN..udp_len].to_vec(),
        })
    }

    /// Fast path used by the AP: extracts only the UDP destination port
    /// from a frame body without copying the payload.
    ///
    /// # Errors
    ///
    /// Same conditions as [`UdpDatagram::parse`].
    pub fn peek_dst_port(body: &[u8]) -> Result<u16, WifiError> {
        if body.len() < UDP_STACK_OVERHEAD {
            return Err(WifiError::NotUdpPayload("body shorter than headers"));
        }
        if body[0] != 0xaa || body[1] != 0xaa || body[2] != 0x03 {
            return Err(WifiError::NotUdpPayload("missing LLC/SNAP header"));
        }
        if u16::from_be_bytes([body[6], body[7]]) != ETHERTYPE_IPV4 {
            return Err(WifiError::NotUdpPayload("not IPv4"));
        }
        let ip = &body[LLC_SNAP_LEN..];
        let ihl = ((ip[0] & 0x0f) as usize) * 4;
        if ip[0] >> 4 != 4 || ihl < IPV4_HEADER_LEN {
            return Err(WifiError::NotUdpPayload("bad IP header"));
        }
        if ip[9] != IP_PROTO_UDP {
            return Err(WifiError::NotUdpPayload("not UDP"));
        }
        if ip.len() < ihl + 4 {
            return Err(WifiError::NotUdpPayload("truncated UDP header"));
        }
        Ok(u16::from_be_bytes([ip[ihl + 2], ip[ihl + 3]]))
    }
}

/// Computes the UDP checksum (RFC 768): one's-complement sum over the
/// IPv4 pseudo-header, the UDP header with a zero checksum field, and
/// the payload. A computed value of 0 is transmitted as 0xFFFF so it
/// is never mistaken for "no checksum".
fn udp_checksum(
    src_ip: [u8; 4],
    dst_ip: [u8; 4],
    src_port: u16,
    dst_port: u16,
    udp_len: u16,
    payload: &[u8],
) -> u16 {
    let mut sum = 0u32;
    let mut add16 = |hi: u8, lo: u8| sum += u16::from_be_bytes([hi, lo]) as u32;
    add16(src_ip[0], src_ip[1]);
    add16(src_ip[2], src_ip[3]);
    add16(dst_ip[0], dst_ip[1]);
    add16(dst_ip[2], dst_ip[3]);
    sum += IP_PROTO_UDP as u32;
    sum += udp_len as u32;
    sum += src_port as u32;
    sum += dst_port as u32;
    sum += udp_len as u32; // length appears in the header too
    for chunk in payload.chunks(2) {
        let word = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    let folded = !(sum as u16);
    if folded == 0 {
        0xffff
    } else {
        folded
    }
}

/// Computes the IPv4 header checksum with the checksum field zeroed.
fn ipv4_checksum(header: &[u8]) -> u16 {
    let mut sum = 0u32;
    for (i, chunk) in header.chunks(2).enumerate() {
        if i == 5 {
            continue; // checksum field itself
        }
        let word = if chunk.len() == 2 {
            u16::from_be_bytes([chunk[0], chunk[1]])
        } else {
            u16::from_be_bytes([chunk[0], 0])
        };
        sum += word as u32;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

/// Verifies an IPv4 header checksum.
fn ipv4_checksum_verify(header: &[u8]) -> Result<(), ()> {
    let stored = u16::from_be_bytes([header[10], header[11]]);
    if ipv4_checksum(header) == stored {
        Ok(())
    } else {
        Err(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UdpDatagram {
        UdpDatagram::new(
            [10, 0, 0, 5],
            [255, 255, 255, 255],
            49152,
            1900,
            b"M-SEARCH * HTTP/1.1".to_vec(),
        )
    }

    #[test]
    fn round_trip() {
        let d = sample();
        let bytes = d.to_bytes();
        assert_eq!(bytes.len(), d.encoded_len());
        let parsed = UdpDatagram::parse(&bytes).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn peek_matches_parse() {
        let bytes = sample().to_bytes();
        assert_eq!(UdpDatagram::peek_dst_port(&bytes).unwrap(), 1900);
    }

    #[test]
    fn rejects_short_body() {
        assert!(matches!(
            UdpDatagram::parse(&[0u8; 10]),
            Err(WifiError::NotUdpPayload(_))
        ));
    }

    #[test]
    fn rejects_non_llc() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x00;
        assert!(UdpDatagram::parse(&bytes).is_err());
        assert!(UdpDatagram::peek_dst_port(&bytes).is_err());
    }

    #[test]
    fn rejects_non_ipv4_ethertype() {
        let mut bytes = sample().to_bytes();
        bytes[6] = 0x86; // 0x86dd = IPv6
        bytes[7] = 0xdd;
        assert!(matches!(
            UdpDatagram::parse(&bytes),
            Err(WifiError::NotUdpPayload("not IPv4"))
        ));
    }

    #[test]
    fn rejects_tcp() {
        let mut bytes = sample().to_bytes();
        bytes[LLC_SNAP_LEN + 9] = 6; // TCP
                                     // fix checksum so the protocol check is what fails
        let ihl = 20;
        bytes[LLC_SNAP_LEN + 10] = 0;
        bytes[LLC_SNAP_LEN + 11] = 0;
        let csum = ipv4_checksum(&bytes[LLC_SNAP_LEN..LLC_SNAP_LEN + ihl]);
        bytes[LLC_SNAP_LEN + 10..LLC_SNAP_LEN + 12].copy_from_slice(&csum.to_be_bytes());
        assert!(matches!(
            UdpDatagram::parse(&bytes),
            Err(WifiError::NotUdpPayload("not UDP"))
        ));
    }

    #[test]
    fn rejects_corrupted_checksum() {
        let mut bytes = sample().to_bytes();
        bytes[LLC_SNAP_LEN + 10] ^= 0xff;
        assert!(matches!(
            UdpDatagram::parse(&bytes),
            Err(WifiError::NotUdpPayload("bad IPv4 checksum"))
        ));
    }

    #[test]
    fn empty_payload_round_trip() {
        let d = UdpDatagram::new([1, 2, 3, 4], [5, 6, 7, 8], 1, 2, vec![]);
        let parsed = UdpDatagram::parse(&d.to_bytes()).unwrap();
        assert_eq!(parsed.payload(), &[] as &[u8]);
        assert_eq!(parsed.dst_port(), 2);
    }

    #[test]
    fn udp_checksum_round_trips() {
        let d = sample();
        let bytes = d.to_bytes();
        // The encoded checksum is nonzero and the datagram parses.
        let csum_off = LLC_SNAP_LEN + IPV4_HEADER_LEN + 6;
        let stored = u16::from_be_bytes([bytes[csum_off], bytes[csum_off + 1]]);
        assert_ne!(stored, 0);
        assert!(UdpDatagram::parse(&bytes).is_ok());
    }

    #[test]
    fn corrupted_payload_fails_udp_checksum() {
        let d = sample();
        let mut bytes = d.to_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(matches!(
            UdpDatagram::parse(&bytes),
            Err(WifiError::NotUdpPayload("bad UDP checksum"))
        ));
        // The fast port peek intentionally skips payload validation.
        assert!(UdpDatagram::peek_dst_port(&bytes).is_ok());
    }

    #[test]
    fn zero_checksum_is_accepted() {
        // "No checksum" frames (legal over IPv4) still parse.
        let d = sample();
        let mut bytes = d.to_bytes();
        let csum_off = LLC_SNAP_LEN + IPV4_HEADER_LEN + 6;
        bytes[csum_off] = 0;
        bytes[csum_off + 1] = 0;
        assert_eq!(UdpDatagram::parse(&bytes).unwrap(), d);
    }

    #[test]
    fn checksum_self_consistent() {
        let d = sample();
        let bytes = d.to_bytes();
        let ip = &bytes[LLC_SNAP_LEN..LLC_SNAP_LEN + IPV4_HEADER_LEN];
        assert!(ipv4_checksum_verify(ip).is_ok());
    }

    #[test]
    fn overhead_constant_matches_headers() {
        assert_eq!(UDP_STACK_OVERHEAD, 36);
    }
}
