//! Error types for the 802.11 substrate.

use std::fmt;

/// Errors produced while constructing or parsing 802.11 structures.
///
/// # Example
///
/// ```
/// use hide_wifi::mac::Aid;
/// use hide_wifi::WifiError;
///
/// let err = Aid::new(0).unwrap_err();
/// assert!(matches!(err, WifiError::InvalidAid(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WifiError {
    /// The association ID is outside the valid 802.11 range `1..=2007`.
    InvalidAid(u16),
    /// A buffer ended before a complete structure could be decoded.
    Truncated {
        /// What was being decoded when the buffer ran out.
        what: &'static str,
        /// How many bytes the decoder needed.
        needed: usize,
        /// How many bytes were available.
        available: usize,
    },
    /// An information element declared a length inconsistent with its body.
    BadElementLength {
        /// Element ID of the offending element.
        element_id: u8,
        /// Declared body length.
        declared: usize,
    },
    /// An element ID did not match the expected one.
    UnexpectedElementId {
        /// The element ID expected by the caller.
        expected: u8,
        /// The element ID found in the buffer.
        found: u8,
    },
    /// A frame-control field declared a type/subtype this crate cannot
    /// represent.
    UnknownFrameType {
        /// Raw 2-bit type field.
        frame_type: u8,
        /// Raw 4-bit subtype field.
        subtype: u8,
    },
    /// A bitmap offset was odd; the 802.11 TIM encoding requires the
    /// trimmed leading byte count `N1` to be even.
    OddBitmapOffset(usize),
    /// The partial virtual bitmap would exceed the 251-byte element limit.
    BitmapTooLong(usize),
    /// A payload did not contain a well-formed LLC/SNAP + IPv4 + UDP stack.
    NotUdpPayload(&'static str),
    /// A numeric field exceeded its encodable range.
    FieldOverflow {
        /// Name of the field.
        field: &'static str,
        /// The value that did not fit.
        value: u64,
    },
    /// The DCF model was given parameters for which no solution exists.
    DcfNoSolution(&'static str),
}

impl fmt::Display for WifiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WifiError::InvalidAid(aid) => {
                write!(f, "association id {aid} outside valid range 1..=2007")
            }
            WifiError::Truncated {
                what,
                needed,
                available,
            } => write!(
                f,
                "truncated {what}: needed {needed} bytes, only {available} available"
            ),
            WifiError::BadElementLength {
                element_id,
                declared,
            } => write!(
                f,
                "element {element_id} declared invalid body length {declared}"
            ),
            WifiError::UnexpectedElementId { expected, found } => {
                write!(f, "expected element id {expected}, found {found}")
            }
            WifiError::UnknownFrameType {
                frame_type,
                subtype,
            } => write!(f, "unknown frame type {frame_type}/subtype {subtype}"),
            WifiError::OddBitmapOffset(n1) => {
                write!(
                    f,
                    "bitmap offset {n1} is odd; TIM encoding requires even N1"
                )
            }
            WifiError::BitmapTooLong(len) => {
                write!(
                    f,
                    "partial virtual bitmap of {len} bytes exceeds element limit"
                )
            }
            WifiError::NotUdpPayload(reason) => {
                write!(f, "payload is not LLC/SNAP+IPv4+UDP: {reason}")
            }
            WifiError::FieldOverflow { field, value } => {
                write!(f, "value {value} does not fit in field {field}")
            }
            WifiError::DcfNoSolution(reason) => {
                write!(f, "DCF model has no solution: {reason}")
            }
        }
    }
}

impl std::error::Error for WifiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let msgs = [
            WifiError::InvalidAid(0).to_string(),
            WifiError::Truncated {
                what: "beacon",
                needed: 10,
                available: 2,
            }
            .to_string(),
            WifiError::OddBitmapOffset(3).to_string(),
            WifiError::NotUdpPayload("too short").to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase());
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<WifiError>();
    }

    #[test]
    fn error_implements_std_error() {
        let err: Box<dyn std::error::Error> = Box::new(WifiError::InvalidAid(9999));
        assert!(err.source().is_none());
    }
}
