//! Bianchi's model of the 802.11 Distributed Coordination Function.
//!
//! The HIDE paper's network-capacity analysis (Section V.A) borrows the
//! saturation-throughput model of Bianchi (the paper's reference \[13\]) with the
//! 802.11b parameters of Wu et al. (Table II). This module implements the
//! full model: the fixed point between the per-station transmission
//! probability `τ` and the conditional collision probability `p`, and the
//! normalized saturation throughput `Φ` for the *basic access* mechanism.
//!
//! # Example
//!
//! ```
//! use hide_wifi::dcf::{DcfConfig, solve};
//!
//! let config = DcfConfig::table_ii();
//! let sol = solve(&config, 10)?;
//! assert!(sol.tau > 0.0 && sol.tau < 1.0);
//! assert!(sol.throughput > 0.0 && sol.throughput < 1.0);
//! // Capacity in bit/s is Φ · r (Eq. 20 of the HIDE paper).
//! assert!(sol.capacity_bps() > 1e6);
//! # Ok::<(), hide_wifi::WifiError>(())
//! ```

use crate::error::WifiError;

/// MAC/PHY parameters of the DCF model.
///
/// Defaults come from Table II of the HIDE paper (an 802.11b network as
/// configured in Wu et al., INFOCOM 2002).
#[derive(Debug, Clone, PartialEq)]
pub struct DcfConfig {
    /// Minimum contention window `W` (number of slots).
    pub cw_min: u32,
    /// Maximum contention window (defines the backoff stage count `m`).
    pub cw_max: u32,
    /// Slot time in microseconds.
    pub slot_time_us: f64,
    /// SIFS in microseconds.
    pub sifs_us: f64,
    /// DIFS in microseconds.
    pub difs_us: f64,
    /// One-way propagation delay in microseconds.
    pub propagation_us: f64,
    /// Channel data rate in bit/s.
    pub channel_rate_bps: f64,
    /// MAC header length in bits.
    pub mac_header_bits: f64,
    /// PHY preamble + header length in bits. Following Bianchi's model
    /// (and Table II, which lists it in bits alongside the MAC header),
    /// it is transmitted at the channel rate here; a real 802.11b long
    /// preamble goes out at 1 Mbit/s, which would roughly double `T_s`
    /// for short payloads without changing the overhead conclusions.
    pub phy_header_bits: f64,
    /// Average data payload size in bits (`E[P]`, and the `L` of Eq. 22).
    pub payload_bits: f64,
    /// ACK frame length in bits.
    pub ack_bits: f64,
}

impl DcfConfig {
    /// The exact configuration of Table II.
    pub fn table_ii() -> Self {
        DcfConfig {
            cw_min: 32,
            cw_max: 1024,
            slot_time_us: 20.0,
            sifs_us: 10.0,
            difs_us: 50.0,
            propagation_us: 1.0,
            channel_rate_bps: 11e6,
            mac_header_bits: 224.0,
            phy_header_bits: 192.0,
            payload_bits: 1000.0,
            ack_bits: 112.0,
        }
    }

    /// Sets the contention-window range (builder style).
    #[must_use]
    pub fn with_contention_window(mut self, cw_min: u32, cw_max: u32) -> Self {
        self.cw_min = cw_min;
        self.cw_max = cw_max;
        self
    }

    /// Sets the channel data rate in bit/s (builder style).
    #[must_use]
    pub fn with_channel_rate_bps(mut self, rate: f64) -> Self {
        self.channel_rate_bps = rate;
        self
    }

    /// Sets the average data payload size in bits (builder style).
    #[must_use]
    pub fn with_payload_bits(mut self, bits: f64) -> Self {
        self.payload_bits = bits;
        self
    }

    /// Sets slot time, SIFS and DIFS in microseconds (builder style).
    #[must_use]
    pub fn with_timing_us(mut self, slot: f64, sifs: f64, difs: f64) -> Self {
        self.slot_time_us = slot;
        self.sifs_us = sifs;
        self.difs_us = difs;
        self
    }

    /// Number of backoff stages `m = log2(cw_max / cw_min)`.
    pub fn backoff_stages(&self) -> u32 {
        (self.cw_max / self.cw_min).ilog2()
    }

    fn phy_header_us(&self) -> f64 {
        self.phy_header_bits / self.channel_rate_bps * 1e6
    }

    /// Time to transmit the MAC header + payload at the channel rate, in
    /// microseconds.
    fn mpdu_us(&self) -> f64 {
        (self.mac_header_bits + self.payload_bits) / self.channel_rate_bps * 1e6
    }

    fn ack_us(&self) -> f64 {
        self.phy_header_us() + self.ack_bits / self.channel_rate_bps * 1e6
    }

    /// Duration of a successful basic-access transmission (Bianchi's
    /// `T_s`), in microseconds.
    pub fn success_slot_us(&self) -> f64 {
        self.phy_header_us()
            + self.mpdu_us()
            + self.sifs_us
            + self.propagation_us
            + self.ack_us()
            + self.difs_us
            + self.propagation_us
    }

    /// Duration of a collision (Bianchi's `T_c`), in microseconds.
    pub fn collision_slot_us(&self) -> f64 {
        self.phy_header_us() + self.mpdu_us() + self.difs_us + self.propagation_us
    }

    /// Airtime of the payload bits alone, in microseconds.
    pub fn payload_us(&self) -> f64 {
        self.payload_bits / self.channel_rate_bps * 1e6
    }
}

impl Default for DcfConfig {
    fn default() -> Self {
        DcfConfig::table_ii()
    }
}

/// Solution of the DCF fixed point for a given station count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcfSolution {
    /// Per-station per-slot transmission probability.
    pub tau: f64,
    /// Conditional collision probability.
    pub p_collision: f64,
    /// Normalized saturation throughput `Φ`: the fraction of channel
    /// time spent transmitting payload bits.
    pub throughput: f64,
    /// The channel rate the solution was computed for, in bit/s.
    pub channel_rate_bps: f64,
}

impl DcfSolution {
    /// Network capacity in bit/s: `S = Φ · r` (Eq. 20).
    pub fn capacity_bps(&self) -> f64 {
        self.throughput * self.channel_rate_bps
    }
}

/// Bianchi's `τ(p)`: transmission probability given the collision
/// probability, for minimum window `w` and `m` backoff stages.
fn tau_of_p(p: f64, w: f64, m: u32) -> f64 {
    if p >= 0.5 {
        // The closed form has a removable structure around p = 1/2;
        // evaluate the denominator directly, it stays positive.
        let denom = (1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p).powi(m as i32));
        return 2.0 * (1.0 - 2.0 * p) / denom;
    }
    2.0 * (1.0 - 2.0 * p) / ((1.0 - 2.0 * p) * (w + 1.0) + p * w * (1.0 - (2.0 * p).powi(m as i32)))
}

/// Solves the DCF fixed point for `n` saturated stations.
///
/// # Errors
///
/// Returns [`WifiError::DcfNoSolution`] when `n == 0` or the
/// configuration is degenerate (non-positive rate or windows).
pub fn solve(config: &DcfConfig, n: u32) -> Result<DcfSolution, WifiError> {
    if n == 0 {
        return Err(WifiError::DcfNoSolution("station count is zero"));
    }
    if config.channel_rate_bps <= 0.0 {
        return Err(WifiError::DcfNoSolution("channel rate must be positive"));
    }
    if config.cw_min < 1 || config.cw_max < config.cw_min {
        return Err(WifiError::DcfNoSolution("invalid contention windows"));
    }
    let w = config.cw_min as f64;
    let m = config.backoff_stages();

    let (tau, p) = if n == 1 {
        (tau_of_p(0.0, w, m), 0.0)
    } else {
        // Bisection on p: h(p) = [1 - (1 - τ(p))^(n-1)] - p is positive at
        // p = 0 and negative as p → 1.
        let h = |p: f64| -> f64 {
            let tau = tau_of_p(p, w, m);
            1.0 - (1.0 - tau).powi(n as i32 - 1) - p
        };
        let mut lo = 0.0f64;
        let mut hi = 1.0 - 1e-12;
        if h(lo) < 0.0 || h(hi) > 0.0 {
            return Err(WifiError::DcfNoSolution("fixed point not bracketed"));
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if h(mid) >= 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let p = 0.5 * (lo + hi);
        (tau_of_p(p, w, m), p)
    };

    // Throughput (Bianchi Eq. 13): fraction of time carrying payload.
    let nf = n as f64;
    let p_tr = 1.0 - (1.0 - tau).powi(n as i32);
    let p_s = if p_tr > 0.0 {
        nf * tau * (1.0 - tau).powi(n as i32 - 1) / p_tr
    } else {
        0.0
    };
    let sigma = config.slot_time_us;
    let ts = config.success_slot_us();
    let tc = config.collision_slot_us();
    let denom = (1.0 - p_tr) * sigma + p_tr * p_s * ts + p_tr * (1.0 - p_s) * tc;
    let throughput = p_s * p_tr * config.payload_us() / denom;

    Ok(DcfSolution {
        tau,
        p_collision: p,
        throughput,
        channel_rate_bps: config.channel_rate_bps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_ii_values() {
        let c = DcfConfig::table_ii();
        assert_eq!(c.cw_min, 32);
        assert_eq!(c.cw_max, 1024);
        assert_eq!(c.backoff_stages(), 5);
        assert_eq!(c.slot_time_us, 20.0);
        assert_eq!(c.payload_bits, 1000.0);
    }

    #[test]
    fn zero_stations_is_error() {
        assert!(solve(&DcfConfig::table_ii(), 0).is_err());
    }

    #[test]
    fn single_station_has_no_collisions() {
        let sol = solve(&DcfConfig::table_ii(), 1).unwrap();
        assert_eq!(sol.p_collision, 0.0);
        // τ = 2 / (W + 1) for a lone station.
        assert!((sol.tau - 2.0 / 33.0).abs() < 1e-12);
        assert!(sol.throughput > 0.0 && sol.throughput < 1.0);
    }

    #[test]
    fn fixed_point_is_consistent() {
        for n in [2u32, 5, 10, 20, 50] {
            let sol = solve(&DcfConfig::table_ii(), n).unwrap();
            let implied = 1.0 - (1.0 - sol.tau).powi(n as i32 - 1);
            assert!(
                (implied - sol.p_collision).abs() < 1e-9,
                "n={n}: p={} implied={implied}",
                sol.p_collision
            );
        }
    }

    #[test]
    fn collision_probability_increases_with_n() {
        let cfg = DcfConfig::table_ii();
        let mut prev = 0.0;
        for n in [2u32, 5, 10, 20, 50] {
            let sol = solve(&cfg, n).unwrap();
            assert!(sol.p_collision > prev);
            prev = sol.p_collision;
        }
    }

    #[test]
    fn throughput_declines_gently_from_5_to_50() {
        // The paper observes the original capacity "drops only slightly"
        // from 5 to 50 nodes.
        let cfg = DcfConfig::table_ii();
        let s5 = solve(&cfg, 5).unwrap().throughput;
        let s50 = solve(&cfg, 50).unwrap().throughput;
        assert!(s50 < s5);
        assert!(s50 > 0.5 * s5, "decline should be moderate: {s5} -> {s50}");
    }

    #[test]
    fn capacity_in_plausible_range() {
        // 1000-bit payloads at 11 Mbit/s with 802.11b overheads keep the
        // normalized throughput well below the channel rate.
        let sol = solve(&DcfConfig::table_ii(), 10).unwrap();
        let s = sol.capacity_bps();
        assert!(s > 1e6 && s < 6e6, "capacity {s} bit/s");
    }

    #[test]
    fn builder_matches_field_assignment() {
        let built = DcfConfig::table_ii()
            .with_contention_window(16, 512)
            .with_channel_rate_bps(2e6)
            .with_payload_bits(4000.0)
            .with_timing_us(9.0, 16.0, 34.0);
        let mut fields = DcfConfig::table_ii();
        fields.cw_min = 16;
        fields.cw_max = 512;
        fields.channel_rate_bps = 2e6;
        fields.payload_bits = 4000.0;
        fields.slot_time_us = 9.0;
        fields.sifs_us = 16.0;
        fields.difs_us = 34.0;
        assert_eq!(built, fields);
    }

    #[test]
    fn larger_payload_improves_efficiency() {
        let big = DcfConfig::table_ii().with_payload_bits(8000.0);
        let s_small = solve(&DcfConfig::table_ii(), 10).unwrap().throughput;
        let s_big = solve(&big, 10).unwrap().throughput;
        assert!(s_big > s_small);
    }

    #[test]
    fn degenerate_config_rejected() {
        let mut cfg = DcfConfig::table_ii();
        cfg.channel_rate_bps = 0.0;
        assert!(solve(&cfg, 5).is_err());
        let mut cfg = DcfConfig::table_ii();
        cfg.cw_max = 16;
        assert!(solve(&cfg, 5).is_err());
    }

    #[test]
    fn slot_durations_ordered() {
        let cfg = DcfConfig::table_ii();
        assert!(cfg.success_slot_us() > cfg.collision_slot_us());
        assert!(cfg.collision_slot_us() > cfg.payload_us());
    }
}
