//! MAC-layer primitives: addresses, association IDs and frame control.

use crate::error::WifiError;
use std::fmt;

/// Highest association ID allowed by 802.11.
pub const MAX_AID: u16 = 2007;

/// A 48-bit IEEE 802 MAC address.
///
/// # Example
///
/// ```
/// use hide_wifi::mac::MacAddr;
///
/// let addr = MacAddr::new([0x02, 0x00, 0x5e, 0x10, 0x00, 0x01]);
/// assert_eq!(addr.to_string(), "02:00:5e:10:00:01");
/// assert!(!addr.is_broadcast());
/// assert!(MacAddr::BROADCAST.is_broadcast());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Returns the six octets of the address.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Returns `true` if this is the broadcast address.
    pub const fn is_broadcast(&self) -> bool {
        self.0[0] == 0xff
            && self.0[1] == 0xff
            && self.0[2] == 0xff
            && self.0[3] == 0xff
            && self.0[4] == 0xff
            && self.0[5] == 0xff
    }

    /// Returns `true` if the group (multicast) bit is set.
    ///
    /// Broadcast is a special case of multicast.
    pub const fn is_multicast(&self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Deterministically derives a locally-administered unicast address
    /// from an index, useful for simulations that need many distinct
    /// station addresses.
    pub fn station(index: u32) -> Self {
        let b = index.to_be_bytes();
        // 0x02 = locally administered, unicast.
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = &self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            o[0], o[1], o[2], o[3], o[4], o[5]
        )
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl AsRef<[u8]> for MacAddr {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// An 802.11 association ID in the range `1..=2007`.
///
/// AIDs index bits of the TIM and BTIM partial virtual bitmaps: AID `k`
/// owns bit `k % 8` of octet `k / 8` of the (full) virtual bitmap.
///
/// # Example
///
/// ```
/// use hide_wifi::mac::Aid;
///
/// let aid = Aid::new(19)?;
/// assert_eq!(aid.octet(), 2);
/// assert_eq!(aid.bit(), 3);
/// # Ok::<(), hide_wifi::WifiError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Aid(u16);

impl Aid {
    /// Creates an association ID.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::InvalidAid`] when `value` is zero or greater
    /// than [`MAX_AID`].
    pub fn new(value: u16) -> Result<Self, WifiError> {
        if value == 0 || value > MAX_AID {
            return Err(WifiError::InvalidAid(value));
        }
        Ok(Aid(value))
    }

    /// Returns the numeric value of the AID.
    pub const fn value(&self) -> u16 {
        self.0
    }

    /// Octet index of this AID's bit within the full virtual bitmap.
    pub const fn octet(&self) -> usize {
        (self.0 / 8) as usize
    }

    /// Bit index (0 = least significant) within [`Aid::octet`].
    pub const fn bit(&self) -> u8 {
        (self.0 % 8) as u8
    }
}

impl fmt::Display for Aid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AID {}", self.0)
    }
}

impl TryFrom<u16> for Aid {
    type Error = WifiError;

    fn try_from(value: u16) -> Result<Self, Self::Error> {
        Aid::new(value)
    }
}

impl From<Aid> for u16 {
    fn from(aid: Aid) -> u16 {
        aid.0
    }
}

/// The 2-bit frame type of an 802.11 frame-control field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameType {
    /// Management frames (beacons, association, and the HIDE UDP Port
    /// Message).
    Management,
    /// Control frames (ACK, PS-Poll).
    Control,
    /// Data frames.
    Data,
}

impl FrameType {
    /// Raw 2-bit wire value.
    pub const fn to_bits(self) -> u8 {
        match self {
            FrameType::Management => 0b00,
            FrameType::Control => 0b01,
            FrameType::Data => 0b10,
        }
    }

    /// Decodes the 2-bit wire value.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::UnknownFrameType`] for the reserved value `0b11`.
    pub fn from_bits(bits: u8) -> Result<Self, WifiError> {
        match bits & 0b11 {
            0b00 => Ok(FrameType::Management),
            0b01 => Ok(FrameType::Control),
            0b10 => Ok(FrameType::Data),
            other => Err(WifiError::UnknownFrameType {
                frame_type: other,
                subtype: 0,
            }),
        }
    }
}

/// Frame subtypes used in this reproduction.
///
/// The HIDE paper defines the UDP Port Message as a management frame with
/// `type = 00`, `subtype = 1111`, a subtype reserved in the base standard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameSubtype {
    /// Association request management frame (`0000`).
    AssociationRequest,
    /// Association response management frame (`0001`).
    AssociationResponse,
    /// Disassociation management frame (`1010`).
    Disassociation,
    /// Beacon management frame (`1000`).
    Beacon,
    /// HIDE UDP Port Message management frame (`1111`).
    UdpPortMessage,
    /// ACK control frame (`1101`).
    Ack,
    /// PS-Poll control frame (`1010`).
    PsPoll,
    /// Plain data frame (`0000`).
    Data,
}

impl FrameSubtype {
    /// Raw 4-bit wire value.
    pub const fn to_bits(self) -> u8 {
        match self {
            FrameSubtype::AssociationRequest => 0b0000,
            FrameSubtype::AssociationResponse => 0b0001,
            FrameSubtype::Disassociation => 0b1010,
            FrameSubtype::Beacon => 0b1000,
            FrameSubtype::UdpPortMessage => 0b1111,
            FrameSubtype::Ack => 0b1101,
            FrameSubtype::PsPoll => 0b1010,
            FrameSubtype::Data => 0b0000,
        }
    }

    /// The frame type this subtype belongs to.
    pub const fn frame_type(self) -> FrameType {
        match self {
            FrameSubtype::AssociationRequest
            | FrameSubtype::AssociationResponse
            | FrameSubtype::Disassociation
            | FrameSubtype::Beacon
            | FrameSubtype::UdpPortMessage => FrameType::Management,
            FrameSubtype::Ack | FrameSubtype::PsPoll => FrameType::Control,
            FrameSubtype::Data => FrameType::Data,
        }
    }

    /// Decodes a (type, subtype) pair.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::UnknownFrameType`] for combinations this
    /// reproduction does not model.
    pub fn from_bits(frame_type: u8, subtype: u8) -> Result<Self, WifiError> {
        match (frame_type & 0b11, subtype & 0b1111) {
            (0b00, 0b0000) => Ok(FrameSubtype::AssociationRequest),
            (0b00, 0b0001) => Ok(FrameSubtype::AssociationResponse),
            (0b00, 0b1010) => Ok(FrameSubtype::Disassociation),
            (0b00, 0b1000) => Ok(FrameSubtype::Beacon),
            (0b00, 0b1111) => Ok(FrameSubtype::UdpPortMessage),
            (0b01, 0b1101) => Ok(FrameSubtype::Ack),
            (0b01, 0b1010) => Ok(FrameSubtype::PsPoll),
            (0b10, 0b0000) => Ok(FrameSubtype::Data),
            (t, s) => Err(WifiError::UnknownFrameType {
                frame_type: t,
                subtype: s,
            }),
        }
    }
}

/// The 16-bit 802.11 frame-control field.
///
/// Only the bits this reproduction needs are modelled: protocol version
/// (always 0), type, subtype, and the *More Data* bit the AP uses to tell
/// power-saving clients that further broadcast frames follow in the same
/// DTIM period.
///
/// # Example
///
/// ```
/// use hide_wifi::mac::{FrameControl, FrameSubtype};
///
/// let fc = FrameControl::new(FrameSubtype::Data).with_more_data(true);
/// let raw = fc.to_u16();
/// let back = FrameControl::from_u16(raw)?;
/// assert!(back.more_data());
/// assert_eq!(back.subtype(), FrameSubtype::Data);
/// # Ok::<(), hide_wifi::WifiError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FrameControl {
    subtype: FrameSubtype,
    more_data: bool,
    more_fragments: bool,
}

impl FrameControl {
    /// Creates a frame-control field for the given subtype with all flag
    /// bits clear.
    pub const fn new(subtype: FrameSubtype) -> Self {
        FrameControl {
            subtype,
            more_data: false,
            more_fragments: false,
        }
    }

    /// Sets or clears the *More Data* bit (bit 13).
    #[must_use]
    pub const fn with_more_data(mut self, more_data: bool) -> Self {
        self.more_data = more_data;
        self
    }

    /// Sets or clears the *More Fragments* bit (bit 10); HIDE uses it
    /// to paginate UDP Port Messages whose port list exceeds one
    /// element.
    #[must_use]
    pub const fn with_more_fragments(mut self, more_fragments: bool) -> Self {
        self.more_fragments = more_fragments;
        self
    }

    /// Returns the subtype.
    pub const fn subtype(&self) -> FrameSubtype {
        self.subtype
    }

    /// Returns the frame type.
    pub const fn frame_type(&self) -> FrameType {
        self.subtype.frame_type()
    }

    /// Returns the *More Data* bit.
    pub const fn more_data(&self) -> bool {
        self.more_data
    }

    /// Returns the *More Fragments* bit.
    pub const fn more_fragments(&self) -> bool {
        self.more_fragments
    }

    /// Encodes to the 16-bit wire representation (IEEE bit layout:
    /// version bits 0-1, type bits 2-3, subtype bits 4-7, More Data
    /// bit 13).
    pub const fn to_u16(self) -> u16 {
        let t = self.subtype.frame_type().to_bits() as u16;
        let s = self.subtype.to_bits() as u16;
        let md = if self.more_data { 1u16 << 13 } else { 0 };
        let mf = if self.more_fragments { 1u16 << 10 } else { 0 };
        (t << 2) | (s << 4) | md | mf
    }

    /// Decodes from the 16-bit wire representation.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::UnknownFrameType`] when the protocol version
    /// is non-zero or the type/subtype pair is not modelled.
    pub fn from_u16(raw: u16) -> Result<Self, WifiError> {
        let version = (raw & 0b11) as u8;
        if version != 0 {
            return Err(WifiError::UnknownFrameType {
                frame_type: version,
                subtype: 0,
            });
        }
        let t = ((raw >> 2) & 0b11) as u8;
        let s = ((raw >> 4) & 0b1111) as u8;
        let subtype = FrameSubtype::from_bits(t, s)?;
        Ok(FrameControl {
            subtype,
            more_data: raw & (1 << 13) != 0,
            more_fragments: raw & (1 << 10) != 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_address_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        let unicast = MacAddr::station(7);
        assert!(!unicast.is_broadcast());
        assert!(!unicast.is_multicast());
    }

    #[test]
    fn station_addresses_are_distinct() {
        let a = MacAddr::station(1);
        let b = MacAddr::station(2);
        assert_ne!(a, b);
        assert_eq!(MacAddr::station(1), a);
    }

    #[test]
    fn mac_display_format() {
        let addr = MacAddr::new([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(addr.to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn aid_range_validation() {
        assert!(Aid::new(0).is_err());
        assert!(Aid::new(1).is_ok());
        assert!(Aid::new(MAX_AID).is_ok());
        assert!(Aid::new(MAX_AID + 1).is_err());
    }

    #[test]
    fn aid_octet_bit_mapping() {
        // AID 1 -> octet 0, bit 1 (bit 0 of octet 0 is the DTIM
        // broadcast indicator in the standard TIM).
        let aid = Aid::new(1).unwrap();
        assert_eq!(aid.octet(), 0);
        assert_eq!(aid.bit(), 1);

        let aid = Aid::new(8).unwrap();
        assert_eq!(aid.octet(), 1);
        assert_eq!(aid.bit(), 0);

        let aid = Aid::new(2007).unwrap();
        assert_eq!(aid.octet(), 250);
        assert_eq!(aid.bit(), 7);
    }

    #[test]
    fn aid_try_from_round_trip() {
        let aid = Aid::try_from(42u16).unwrap();
        assert_eq!(u16::from(aid), 42);
    }

    #[test]
    fn frame_type_round_trip() {
        for ft in [FrameType::Management, FrameType::Control, FrameType::Data] {
            assert_eq!(FrameType::from_bits(ft.to_bits()).unwrap(), ft);
        }
        assert!(FrameType::from_bits(0b11).is_err());
    }

    #[test]
    fn subtype_round_trip() {
        for st in [
            FrameSubtype::AssociationRequest,
            FrameSubtype::AssociationResponse,
            FrameSubtype::Disassociation,
            FrameSubtype::Beacon,
            FrameSubtype::UdpPortMessage,
            FrameSubtype::Ack,
            FrameSubtype::PsPoll,
            FrameSubtype::Data,
        ] {
            let decoded = FrameSubtype::from_bits(st.frame_type().to_bits(), st.to_bits()).unwrap();
            assert_eq!(decoded, st);
        }
    }

    #[test]
    fn udp_port_message_is_management_subtype_1111() {
        // Paper Section III.B: type=00, subtype=1111.
        assert_eq!(
            FrameSubtype::UdpPortMessage.frame_type(),
            FrameType::Management
        );
        assert_eq!(FrameSubtype::UdpPortMessage.to_bits(), 0b1111);
    }

    #[test]
    fn frame_control_round_trip_with_more_data() {
        for md in [false, true] {
            let fc = FrameControl::new(FrameSubtype::Data).with_more_data(md);
            let back = FrameControl::from_u16(fc.to_u16()).unwrap();
            assert_eq!(back, fc);
        }
    }

    #[test]
    fn frame_control_more_fragments_round_trip() {
        let fc = FrameControl::new(FrameSubtype::UdpPortMessage).with_more_fragments(true);
        let back = FrameControl::from_u16(fc.to_u16()).unwrap();
        assert!(back.more_fragments());
        assert!(!back.more_data());
        assert_eq!(fc.to_u16() & (1 << 10), 1 << 10);
    }

    #[test]
    fn frame_control_rejects_bad_version() {
        assert!(FrameControl::from_u16(0b01).is_err());
    }

    #[test]
    fn frame_control_rejects_unknown_subtype() {
        // Management type with subtype 0b0011 is not modelled.
        let raw = 0b0011 << 4;
        assert!(FrameControl::from_u16(raw).is_err());
    }
}
