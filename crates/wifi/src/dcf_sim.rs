//! Discrete-event simulation of the 802.11 DCF.
//!
//! [`crate::dcf`] solves Bianchi's *analytical* model, which the HIDE
//! paper borrows for its capacity analysis. This module implements the
//! mechanism itself — saturated stations running slotted CSMA/CA with
//! binary exponential backoff — so the analytical solver can be
//! validated empirically: the simulated saturation throughput, per-slot
//! transmission probability `τ` and conditional collision probability
//! `p` must match the fixed point.
//!
//! # Example
//!
//! ```
//! use hide_wifi::dcf::{self, DcfConfig};
//! use hide_wifi::dcf_sim::{simulate, DcfSimConfig};
//!
//! let dcf = DcfConfig::table_ii();
//! let analytic = dcf::solve(&dcf, 10)?;
//! let sim = simulate(&DcfSimConfig::new(dcf, 10).with_events(50_000));
//! let err = (sim.throughput - analytic.throughput).abs() / analytic.throughput;
//! assert!(err < 0.05, "simulation within 5% of the model");
//! # Ok::<(), hide_wifi::WifiError>(())
//! ```

use crate::dcf::DcfConfig;

/// Configuration of a DCF simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct DcfSimConfig {
    /// MAC/PHY parameters.
    pub dcf: DcfConfig,
    /// Number of saturated stations.
    pub stations: u32,
    /// Number of channel events (successes + collisions) to simulate.
    pub events: u64,
    /// RNG seed.
    pub seed: u64,
}

impl DcfSimConfig {
    /// Creates a configuration with 100 000 channel events.
    pub fn new(dcf: DcfConfig, stations: u32) -> Self {
        DcfSimConfig {
            dcf,
            stations,
            events: 100_000,
            seed: 1,
        }
    }

    /// Sets the number of channel events.
    #[must_use]
    pub fn with_events(mut self, events: u64) -> Self {
        self.events = events;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of a DCF simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DcfSimResult {
    /// Normalized saturation throughput: fraction of time carrying
    /// payload bits (comparable to [`crate::dcf::DcfSolution::throughput`]).
    pub throughput: f64,
    /// Successful transmissions observed.
    pub successes: u64,
    /// Collision events observed.
    pub collisions: u64,
    /// Empirical per-station per-slot transmission probability.
    pub tau_empirical: f64,
    /// Empirical conditional collision probability (fraction of
    /// transmission attempts that collided).
    pub p_empirical: f64,
    /// Simulated channel time in microseconds.
    pub simulated_time_us: f64,
}

/// A small deterministic xorshift RNG — enough for backoff draws and
/// dependency-free.
#[derive(Debug, Clone)]
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> Self {
        XorShift64(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Uniform draw in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

struct Station {
    backoff: u64,
    stage: u32,
}

/// Runs the slotted CSMA/CA simulation.
///
/// Stations are saturated: a new frame is ready the instant the
/// previous attempt resolves. Slot semantics follow Bianchi's chain —
/// every station's backoff decrements once per *system slot*, where a
/// system slot is either an idle slot or one complete
/// transmission/collision period. (Real 802.11 freezes counters during
/// busy periods; Bianchi's model folds the busy period into a single
/// decrement, and matching the model is the point of this simulator.)
///
/// # Panics
///
/// Panics if `config.stations` is zero.
pub fn simulate(config: &DcfSimConfig) -> DcfSimResult {
    assert!(config.stations > 0, "need at least one station");
    let dcf = &config.dcf;
    let m = dcf.backoff_stages();
    let w = dcf.cw_min as u64;
    let mut rng = XorShift64::new(config.seed);

    let draw = |rng: &mut XorShift64, stage: u32| -> u64 {
        let window = w << stage.min(m);
        rng.below(window)
    };

    let mut stations: Vec<Station> = (0..config.stations)
        .map(|_| Station {
            backoff: 0,
            stage: 0,
        })
        .collect();
    for s in stations.iter_mut() {
        s.backoff = draw(&mut rng, 0);
    }

    let mut time_us = 0.0f64;
    let mut payload_time_us = 0.0f64;
    let mut successes = 0u64;
    let mut collisions = 0u64;
    let mut attempts = 0u64;
    let mut collided_attempts = 0u64;
    let mut station_slots = 0u64;

    let mut events = 0u64;
    while events < config.events {
        // Advance through the shortest remaining backoff.
        let min_backoff = stations.iter().map(|s| s.backoff).min().expect("nonempty");
        time_us += min_backoff as f64 * dcf.slot_time_us;
        station_slots += (min_backoff + 1) * stations.len() as u64;
        for s in stations.iter_mut() {
            s.backoff -= min_backoff;
        }

        // Everyone at zero transmits in this slot.
        let transmitters: Vec<usize> = stations
            .iter()
            .enumerate()
            .filter(|(_, s)| s.backoff == 0)
            .map(|(i, _)| i)
            .collect();
        attempts += transmitters.len() as u64;
        events += 1;

        if transmitters.len() == 1 {
            successes += 1;
            time_us += dcf.success_slot_us();
            payload_time_us += dcf.payload_us();
            let s = &mut stations[transmitters[0]];
            s.stage = 0;
            s.backoff = draw(&mut rng, 0) + 1;
        } else {
            collisions += 1;
            collided_attempts += transmitters.len() as u64;
            time_us += dcf.collision_slot_us();
            for &i in &transmitters {
                let s = &mut stations[i];
                s.stage = (s.stage + 1).min(m);
                s.backoff = draw(&mut rng, s.stage) + 1;
            }
        }
        // Bianchi slot semantics: the busy period itself counts as one
        // decrement slot for every station (transmitters already redrew
        // with a +1 compensating for this decrement).
        for s in stations.iter_mut() {
            s.backoff -= 1;
        }
    }

    DcfSimResult {
        throughput: payload_time_us / time_us,
        successes,
        collisions,
        tau_empirical: attempts as f64 / station_slots as f64,
        p_empirical: if attempts > 0 {
            collided_attempts as f64 / attempts as f64
        } else {
            0.0
        },
        simulated_time_us: time_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcf;

    fn run(n: u32, events: u64) -> (DcfSimResult, dcf::DcfSolution) {
        let cfg = DcfConfig::table_ii();
        let analytic = dcf::solve(&cfg, n).unwrap();
        let sim = simulate(&DcfSimConfig::new(cfg, n).with_events(events).with_seed(7));
        (sim, analytic)
    }

    #[test]
    fn single_station_never_collides() {
        let (sim, _) = run(1, 20_000);
        assert_eq!(sim.collisions, 0);
        assert_eq!(sim.p_empirical, 0.0);
        assert!(sim.throughput > 0.0);
    }

    #[test]
    fn throughput_matches_bianchi_small_n() {
        for n in [2u32, 5] {
            let (sim, analytic) = run(n, 60_000);
            let err = (sim.throughput - analytic.throughput).abs() / analytic.throughput;
            assert!(
                err < 0.05,
                "n={n}: sim {} vs analytic {} ({:.1}% off)",
                sim.throughput,
                analytic.throughput,
                err * 100.0
            );
        }
    }

    #[test]
    fn throughput_matches_bianchi_larger_n() {
        for n in [10u32, 20] {
            let (sim, analytic) = run(n, 60_000);
            let err = (sim.throughput - analytic.throughput).abs() / analytic.throughput;
            assert!(
                err < 0.07,
                "n={n}: sim {} vs analytic {} ({:.1}% off)",
                sim.throughput,
                analytic.throughput,
                err * 100.0
            );
        }
    }

    #[test]
    fn collision_probability_matches_fixed_point() {
        let (sim, analytic) = run(10, 60_000);
        assert!(
            (sim.p_empirical - analytic.p_collision).abs() < 0.05,
            "sim p {} vs analytic {}",
            sim.p_empirical,
            analytic.p_collision
        );
    }

    #[test]
    fn tau_matches_fixed_point() {
        let (sim, analytic) = run(10, 60_000);
        let err = (sim.tau_empirical - analytic.tau).abs() / analytic.tau;
        assert!(
            err < 0.15,
            "sim tau {} vs analytic {}",
            sim.tau_empirical,
            analytic.tau
        );
    }

    #[test]
    fn more_stations_more_collisions() {
        let (s5, _) = run(5, 30_000);
        let (s30, _) = run(30, 30_000);
        assert!(s30.p_empirical > s5.p_empirical);
        assert!(s30.throughput < s5.throughput);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = DcfConfig::table_ii();
        let a = simulate(&DcfSimConfig::new(cfg.clone(), 5).with_events(5_000));
        let b = simulate(&DcfSimConfig::new(cfg, 5).with_events(5_000));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "station")]
    fn zero_stations_panics() {
        let cfg = DcfConfig::table_ii();
        let _ = simulate(&DcfSimConfig::new(cfg, 0));
    }
}
