//! Association management frames.
//!
//! HIDE piggy-backs on the standard association exchange: a client that
//! supports HIDE includes an (initially empty) *Open UDP Ports* element
//! in its association request, which tells the AP to expect UDP Port
//! Messages from it. The association response returns the AID whose bit
//! the client will watch in TIM and BTIM bitmaps.

use crate::error::WifiError;
use crate::frame::MAC_HEADER_LEN;
use crate::ie::{InformationElement, OpenUdpPorts, RawElement};
use crate::mac::{Aid, FrameControl, FrameSubtype, MacAddr};

/// Element ID of the standard SSID element.
pub const ELEMENT_ID_SSID: u8 = 0;

/// Status code for a successful association.
pub const STATUS_SUCCESS: u16 = 0;
/// Status code for "association denied, AP out of resources" (AIDs).
pub const STATUS_DENIED_NO_RESOURCES: u16 = 17;

fn encode_header(out: &mut Vec<u8>, subtype: FrameSubtype, to: MacAddr, from: MacAddr) {
    out.extend_from_slice(&FrameControl::new(subtype).to_u16().to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(to.as_ref());
    out.extend_from_slice(from.as_ref());
    out.extend_from_slice(to.as_ref()); // BSSID = AP
    out.extend_from_slice(&0u16.to_le_bytes());
}

fn decode_header(
    buf: &[u8],
    expected: FrameSubtype,
) -> Result<(MacAddr, MacAddr, &[u8]), WifiError> {
    if buf.len() < MAC_HEADER_LEN {
        return Err(WifiError::Truncated {
            what: "association frame header",
            needed: MAC_HEADER_LEN,
            available: buf.len(),
        });
    }
    let fc = FrameControl::from_u16(u16::from_le_bytes([buf[0], buf[1]]))?;
    if fc.subtype() != expected {
        return Err(WifiError::UnknownFrameType {
            frame_type: fc.frame_type().to_bits(),
            subtype: fc.subtype().to_bits(),
        });
    }
    let take = |start: usize| -> MacAddr {
        let mut a = [0u8; 6];
        a.copy_from_slice(&buf[start..start + 6]);
        MacAddr::new(a)
    };
    Ok((take(4), take(10), &buf[MAC_HEADER_LEN..]))
}

/// An association request from a station to an AP.
///
/// # Example
///
/// ```
/// use hide_wifi::assoc::AssociationRequest;
/// use hide_wifi::mac::MacAddr;
///
/// let req = AssociationRequest::new(MacAddr::station(1), MacAddr::station(0), "cafe")
///     .with_hide_support();
/// let parsed = AssociationRequest::parse(&req.to_bytes())?;
/// assert_eq!(parsed.ssid(), "cafe");
/// assert!(parsed.supports_hide());
/// # Ok::<(), hide_wifi::WifiError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssociationRequest {
    client: MacAddr,
    ap: MacAddr,
    ssid: String,
    listen_interval: u16,
    hide_support: bool,
}

impl AssociationRequest {
    /// Creates a request to join `ssid` at `ap`.
    pub fn new(client: MacAddr, ap: MacAddr, ssid: impl Into<String>) -> Self {
        AssociationRequest {
            client,
            ap,
            ssid: ssid.into(),
            listen_interval: 1,
            hide_support: false,
        }
    }

    /// Declares HIDE support (adds an empty Open UDP Ports element).
    #[must_use]
    pub fn with_hide_support(mut self) -> Self {
        self.hide_support = true;
        self
    }

    /// Sets the listen interval in beacon intervals.
    #[must_use]
    pub fn with_listen_interval(mut self, interval: u16) -> Self {
        self.listen_interval = interval;
        self
    }

    /// The requesting station.
    pub fn client(&self) -> MacAddr {
        self.client
    }

    /// The target AP.
    pub fn ap(&self) -> MacAddr {
        self.ap
    }

    /// The requested SSID.
    pub fn ssid(&self) -> &str {
        &self.ssid
    }

    /// The listen interval in beacon intervals.
    pub fn listen_interval(&self) -> u16 {
        self.listen_interval
    }

    /// Whether the station declared HIDE support.
    pub fn supports_hide(&self) -> bool {
        self.hide_support
    }

    /// Encodes the frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        encode_header(
            &mut out,
            FrameSubtype::AssociationRequest,
            self.ap,
            self.client,
        );
        out.extend_from_slice(&0x0001u16.to_le_bytes()); // capability: ESS
        out.extend_from_slice(&self.listen_interval.to_le_bytes());
        InformationElement::Raw(RawElement {
            id: ELEMENT_ID_SSID,
            body: self.ssid.as_bytes().to_vec(),
        })
        .encode(&mut out);
        if self.hide_support {
            InformationElement::OpenUdpPorts(OpenUdpPorts::new([]).expect("empty list fits"))
                .encode(&mut out);
        }
        out
    }

    /// Decodes an association request.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::Truncated`] / [`WifiError::UnknownFrameType`]
    /// for buffers that are not a well-formed request, and element
    /// errors for malformed bodies.
    pub fn parse(buf: &[u8]) -> Result<Self, WifiError> {
        let (ap, client, body) = decode_header(buf, FrameSubtype::AssociationRequest)?;
        if body.len() < 4 {
            return Err(WifiError::Truncated {
                what: "association request fixed fields",
                needed: 4,
                available: body.len(),
            });
        }
        let listen_interval = u16::from_le_bytes([body[2], body[3]]);
        let elements = InformationElement::decode_all(&body[4..])?;
        let mut ssid = String::new();
        let mut hide_support = false;
        for e in elements {
            match e {
                InformationElement::Raw(raw) if raw.id == ELEMENT_ID_SSID => {
                    ssid = String::from_utf8_lossy(&raw.body).into_owned();
                }
                InformationElement::OpenUdpPorts(_) => hide_support = true,
                _ => {}
            }
        }
        Ok(AssociationRequest {
            client,
            ap,
            ssid,
            listen_interval,
            hide_support,
        })
    }
}

/// An association response from an AP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AssociationResponse {
    ap: MacAddr,
    client: MacAddr,
    status: u16,
    aid: Option<Aid>,
}

impl AssociationResponse {
    /// A successful response assigning `aid`.
    pub fn success(ap: MacAddr, client: MacAddr, aid: Aid) -> Self {
        AssociationResponse {
            ap,
            client,
            status: STATUS_SUCCESS,
            aid: Some(aid),
        }
    }

    /// A denial with the given status code.
    pub fn denied(ap: MacAddr, client: MacAddr, status: u16) -> Self {
        AssociationResponse {
            ap,
            client,
            status,
            aid: None,
        }
    }

    /// The responding AP.
    pub fn ap(&self) -> MacAddr {
        self.ap
    }

    /// The station being answered.
    pub fn client(&self) -> MacAddr {
        self.client
    }

    /// The 802.11 status code (0 = success).
    pub fn status(&self) -> u16 {
        self.status
    }

    /// The assigned AID on success.
    pub fn aid(&self) -> Option<Aid> {
        self.aid
    }

    /// Whether the association succeeded.
    pub fn is_success(&self) -> bool {
        self.status == STATUS_SUCCESS
    }

    /// Encodes the frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        encode_header(
            &mut out,
            FrameSubtype::AssociationResponse,
            self.client,
            self.ap,
        );
        out.extend_from_slice(&0x0001u16.to_le_bytes()); // capability
        out.extend_from_slice(&self.status.to_le_bytes());
        // AID field with the two top bits set, 0 when denied.
        let aid_field = self.aid.map(|a| a.value() | 0xc000).unwrap_or(0);
        out.extend_from_slice(&aid_field.to_le_bytes());
        out
    }

    /// Decodes an association response.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::Truncated`] / [`WifiError::UnknownFrameType`]
    /// for malformed buffers, and [`WifiError::InvalidAid`] when a
    /// success response carries an out-of-range AID.
    pub fn parse(buf: &[u8]) -> Result<Self, WifiError> {
        let (client, ap, body) = decode_header(buf, FrameSubtype::AssociationResponse)?;
        if body.len() < 6 {
            return Err(WifiError::Truncated {
                what: "association response fixed fields",
                needed: 6,
                available: body.len(),
            });
        }
        let status = u16::from_le_bytes([body[2], body[3]]);
        let aid_field = u16::from_le_bytes([body[4], body[5]]) & 0x3fff;
        let aid = if status == STATUS_SUCCESS {
            Some(Aid::new(aid_field)?)
        } else {
            None
        };
        Ok(AssociationResponse {
            ap,
            client,
            status,
            aid,
        })
    }
}

/// A disassociation notice (either direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disassociation {
    from: MacAddr,
    to: MacAddr,
    reason: u16,
}

impl Disassociation {
    /// Reason code: station is leaving the BSS.
    pub const REASON_LEAVING: u16 = 8;

    /// Creates a disassociation notice.
    pub fn new(from: MacAddr, to: MacAddr, reason: u16) -> Self {
        Disassociation { from, to, reason }
    }

    /// Sender address.
    pub fn from(&self) -> MacAddr {
        self.from
    }

    /// Recipient address.
    pub fn to(&self) -> MacAddr {
        self.to
    }

    /// The 802.11 reason code.
    pub fn reason(&self) -> u16 {
        self.reason
    }

    /// Encodes the frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        encode_header(&mut out, FrameSubtype::Disassociation, self.to, self.from);
        out.extend_from_slice(&self.reason.to_le_bytes());
        out
    }

    /// Decodes a disassociation frame.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::Truncated`] / [`WifiError::UnknownFrameType`]
    /// for malformed buffers.
    pub fn parse(buf: &[u8]) -> Result<Self, WifiError> {
        let (to, from, body) = decode_header(buf, FrameSubtype::Disassociation)?;
        if body.len() < 2 {
            return Err(WifiError::Truncated {
                what: "disassociation reason",
                needed: 2,
                available: body.len(),
            });
        }
        Ok(Disassociation {
            from,
            to,
            reason: u16::from_le_bytes([body[0], body[1]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip_with_hide() {
        let req = AssociationRequest::new(MacAddr::station(1), MacAddr::station(0), "lab")
            .with_hide_support()
            .with_listen_interval(3);
        let parsed = AssociationRequest::parse(&req.to_bytes()).unwrap();
        assert_eq!(parsed, req);
        assert!(parsed.supports_hide());
        assert_eq!(parsed.listen_interval(), 3);
    }

    #[test]
    fn legacy_request_has_no_hide_element() {
        let req = AssociationRequest::new(MacAddr::station(1), MacAddr::station(0), "lab");
        let parsed = AssociationRequest::parse(&req.to_bytes()).unwrap();
        assert!(!parsed.supports_hide());
    }

    #[test]
    fn utf8_ssid_survives() {
        let req = AssociationRequest::new(MacAddr::station(1), MacAddr::station(0), "café ☕");
        let parsed = AssociationRequest::parse(&req.to_bytes()).unwrap();
        assert_eq!(parsed.ssid(), "café ☕");
    }

    #[test]
    fn success_response_round_trip() {
        let aid = Aid::new(42).unwrap();
        let resp = AssociationResponse::success(MacAddr::station(0), MacAddr::station(1), aid);
        let parsed = AssociationResponse::parse(&resp.to_bytes()).unwrap();
        assert_eq!(parsed, resp);
        assert!(parsed.is_success());
        assert_eq!(parsed.aid(), Some(aid));
    }

    #[test]
    fn denied_response_round_trip() {
        let resp = AssociationResponse::denied(
            MacAddr::station(0),
            MacAddr::station(1),
            STATUS_DENIED_NO_RESOURCES,
        );
        let parsed = AssociationResponse::parse(&resp.to_bytes()).unwrap();
        assert!(!parsed.is_success());
        assert_eq!(parsed.aid(), None);
        assert_eq!(parsed.status(), STATUS_DENIED_NO_RESOURCES);
    }

    #[test]
    fn disassociation_round_trip() {
        let d = Disassociation::new(
            MacAddr::station(1),
            MacAddr::station(0),
            Disassociation::REASON_LEAVING,
        );
        let parsed = Disassociation::parse(&d.to_bytes()).unwrap();
        assert_eq!(parsed, d);
    }

    #[test]
    fn frames_reject_each_other() {
        let req = AssociationRequest::new(MacAddr::station(1), MacAddr::station(0), "x");
        assert!(AssociationResponse::parse(&req.to_bytes()).is_err());
        assert!(Disassociation::parse(&req.to_bytes()).is_err());
        let resp = AssociationResponse::success(
            MacAddr::station(0),
            MacAddr::station(1),
            Aid::new(1).unwrap(),
        );
        assert!(AssociationRequest::parse(&resp.to_bytes()).is_err());
    }

    #[test]
    fn truncated_bodies_rejected() {
        let req = AssociationRequest::new(MacAddr::station(1), MacAddr::station(0), "x");
        let bytes = req.to_bytes();
        assert!(AssociationRequest::parse(&bytes[..MAC_HEADER_LEN + 2]).is_err());
        let resp = AssociationResponse::success(
            MacAddr::station(0),
            MacAddr::station(1),
            Aid::new(1).unwrap(),
        );
        let bytes = resp.to_bytes();
        assert!(AssociationResponse::parse(&bytes[..bytes.len() - 1]).is_err());
    }
}
