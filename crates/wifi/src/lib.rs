//! 802.11 substrate for the HIDE reproduction.
//!
//! This crate implements everything the HIDE protocol (Peng et al., ICDCS
//! 2016) needs from the 802.11 stack, built from scratch:
//!
//! * MAC addressing, association IDs and frame-control fields ([`mac`]),
//! * wire-format encoding/decoding of beacon frames, the new *UDP Port
//!   Message* management frame, ACKs and UDP-padded broadcast data frames
//!   ([`frame`]),
//! * information elements including the standard TIM, the paper's new
//!   Broadcast Traffic Indication Map (BTIM, element ID 201) and Open UDP
//!   Ports (element ID 200) elements ([`ie`]),
//! * the partial-virtual-bitmap compression shared by TIM and BTIM
//!   ([`bitmap`]),
//! * LLC/SNAP + IPv4 + UDP payload parsing used by the AP to extract UDP
//!   destination ports from buffered broadcast frames ([`udp`]),
//! * a PHY airtime model for 802.11b rates ([`phy`]),
//! * beacon/DTIM scheduling ([`timing`]), and
//! * the Bianchi DCF saturation-throughput model used by the paper's
//!   capacity-overhead analysis ([`dcf`]).
//!
//! # Example
//!
//! Build a beacon carrying a BTIM element and decode it back:
//!
//! ```
//! use hide_wifi::bitmap::PartialVirtualBitmap;
//! use hide_wifi::frame::Beacon;
//! use hide_wifi::ie::{Btim, InformationElement};
//! use hide_wifi::mac::{Aid, MacAddr};
//!
//! # fn main() -> Result<(), hide_wifi::WifiError> {
//! let mut bitmap = PartialVirtualBitmap::new();
//! bitmap.set(Aid::new(5)?);
//! let btim = Btim::new(bitmap);
//!
//! let beacon = Beacon::builder(MacAddr::new([2, 0, 0, 0, 0, 1]))
//!     .timestamp_us(1_024_000)
//!     .dtim(0, 3)
//!     .element(InformationElement::Btim(btim))
//!     .build();
//!
//! let bytes = beacon.to_bytes();
//! let decoded = Beacon::parse(&bytes)?;
//! assert!(decoded.btim().unwrap().is_set(Aid::new(5)?));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assoc;
pub mod bitmap;
pub mod dcf;
pub mod dcf_sim;
pub mod error;
pub mod frame;
pub mod ie;
pub mod mac;
pub mod phy;
pub mod timing;
pub mod udp;

pub use error::WifiError;
pub use mac::{Aid, MacAddr};
pub use phy::DataRate;
