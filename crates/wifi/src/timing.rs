//! Beacon and DTIM scheduling.
//!
//! 802.11 time is measured in *time units* (TU) of 1024 µs. An AP emits a
//! beacon every `beacon_interval` TUs; every `dtim_period`-th beacon is a
//! DTIM beacon, after which buffered broadcast/multicast frames are
//! delivered. The paper notes typical DTIM periods of 1–3 beacon intervals.

/// One 802.11 time unit in seconds (1024 µs).
pub const TIME_UNIT_SECS: f64 = 1024e-6;

/// The common default beacon interval of 100 TU (~102.4 ms).
pub const DEFAULT_BEACON_INTERVAL_TU: u16 = 100;

/// Schedule of beacon and DTIM events.
///
/// # Example
///
/// ```
/// use hide_wifi::timing::BeaconSchedule;
///
/// let sched = BeaconSchedule::new(100, 3);
/// assert!((sched.beacon_interval_secs() - 0.1024).abs() < 1e-12);
/// // Beacons 0, 3, 6, ... are DTIM beacons.
/// assert!(sched.is_dtim(0));
/// assert!(!sched.is_dtim(1));
/// assert!(sched.is_dtim(3));
/// assert_eq!(sched.dtim_count(4), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BeaconSchedule {
    beacon_interval_tu: u16,
    dtim_period: u8,
}

impl BeaconSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `beacon_interval_tu` or `dtim_period` is zero — both are
    /// configuration constants, never runtime data.
    pub fn new(beacon_interval_tu: u16, dtim_period: u8) -> Self {
        assert!(beacon_interval_tu > 0, "beacon interval must be positive");
        assert!(dtim_period > 0, "DTIM period must be positive");
        BeaconSchedule {
            beacon_interval_tu,
            dtim_period,
        }
    }

    /// Returns the beacon interval in TUs.
    pub const fn beacon_interval_tu(&self) -> u16 {
        self.beacon_interval_tu
    }

    /// Returns the DTIM period in beacon intervals.
    pub const fn dtim_period(&self) -> u8 {
        self.dtim_period
    }

    /// Beacon interval in seconds.
    pub fn beacon_interval_secs(&self) -> f64 {
        self.beacon_interval_tu as f64 * TIME_UNIT_SECS
    }

    /// Target transmission time of the `index`-th beacon (0-based) in
    /// seconds from the start of the schedule.
    pub fn beacon_time(&self, index: u64) -> f64 {
        index as f64 * self.beacon_interval_secs()
    }

    /// Index of the beacon interval containing time `t` (clamped at 0).
    pub fn interval_of(&self, t: f64) -> u64 {
        if t <= 0.0 {
            return 0;
        }
        (t / self.beacon_interval_secs()) as u64
    }

    /// Whether the `index`-th beacon is a DTIM beacon.
    pub fn is_dtim(&self, index: u64) -> bool {
        index.is_multiple_of(self.dtim_period as u64)
    }

    /// The DTIM count field for the `index`-th beacon: how many more
    /// beacons until the next DTIM (zero at a DTIM).
    pub fn dtim_count(&self, index: u64) -> u8 {
        let p = self.dtim_period as u64;
        let rem = index % p;
        if rem == 0 {
            0
        } else {
            (p - rem) as u8
        }
    }

    /// Time of the first DTIM beacon at or after `t`.
    pub fn next_dtim_at_or_after(&self, t: f64) -> f64 {
        let mut idx = self.interval_of(t);
        // interval_of truncates, so the beacon at `idx` may be before `t`.
        while self.beacon_time(idx) < t {
            idx += 1;
        }
        while !self.is_dtim(idx) {
            idx += 1;
        }
        self.beacon_time(idx)
    }

    /// Number of beacons transmitted in a window `[t0, t1)`.
    pub fn beacons_in(&self, t0: f64, t1: f64) -> u64 {
        if t1 <= t0 {
            return 0;
        }
        let first = {
            let mut i = self.interval_of(t0);
            while self.beacon_time(i) < t0 {
                i += 1;
            }
            i
        };
        let mut count = 0;
        let mut i = first;
        while self.beacon_time(i) < t1 {
            count += 1;
            i += 1;
        }
        count
    }
}

impl Default for BeaconSchedule {
    /// 100 TU beacon interval with DTIM period 1, the configuration the
    /// HIDE evaluation assumes (every beacon can carry broadcast
    /// indications).
    fn default() -> Self {
        BeaconSchedule::new(DEFAULT_BEACON_INTERVAL_TU, 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schedule() {
        let s = BeaconSchedule::default();
        assert_eq!(s.beacon_interval_tu(), 100);
        assert_eq!(s.dtim_period(), 1);
        assert!(s.is_dtim(0));
        assert!(s.is_dtim(17));
    }

    #[test]
    #[should_panic(expected = "beacon interval")]
    fn zero_interval_panics() {
        let _ = BeaconSchedule::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "DTIM period")]
    fn zero_dtim_period_panics() {
        let _ = BeaconSchedule::new(100, 0);
    }

    #[test]
    fn dtim_count_cycles() {
        let s = BeaconSchedule::new(100, 3);
        let counts: Vec<u8> = (0..7).map(|i| s.dtim_count(i)).collect();
        assert_eq!(counts, vec![0, 2, 1, 0, 2, 1, 0]);
    }

    #[test]
    fn interval_of_boundaries() {
        let s = BeaconSchedule::default();
        let bi = s.beacon_interval_secs();
        assert_eq!(s.interval_of(0.0), 0);
        assert_eq!(s.interval_of(bi * 0.5), 0);
        assert_eq!(s.interval_of(bi), 1);
        assert_eq!(s.interval_of(-1.0), 0);
    }

    #[test]
    fn next_dtim_lands_on_dtim_beacon() {
        let s = BeaconSchedule::new(100, 3);
        let bi = s.beacon_interval_secs();
        // just after beacon 1 -> next DTIM is beacon 3
        let t = s.next_dtim_at_or_after(bi * 1.1);
        assert!((t - 3.0 * bi).abs() < 1e-12);
        // exactly at a DTIM beacon -> that beacon
        let t = s.next_dtim_at_or_after(3.0 * bi);
        assert!((t - 3.0 * bi).abs() < 1e-9);
    }

    #[test]
    fn beacons_in_window() {
        let s = BeaconSchedule::default();
        let bi = s.beacon_interval_secs();
        assert_eq!(s.beacons_in(0.0, 10.0 * bi), 10);
        assert_eq!(s.beacons_in(0.5 * bi, 1.5 * bi), 1);
        assert_eq!(s.beacons_in(5.0, 5.0), 0);
        assert_eq!(s.beacons_in(5.0, 4.0), 0);
    }
}
