//! 802.11 frame encoding and decoding.
//!
//! Four frame types are modelled, the ones HIDE touches:
//!
//! * [`Beacon`] — management frame carrying TIM and (for HIDE APs) BTIM
//!   elements,
//! * [`UdpPortMessage`] — the paper's new management frame
//!   (type 00 / subtype 1111) reporting a client's open UDP ports,
//! * [`Ack`] — the control frame acknowledging a UDP Port Message,
//! * [`BroadcastDataFrame`] — a UDP-padded broadcast data frame.

use crate::error::WifiError;
use crate::ie::{Btim, InformationElement, OpenUdpPorts, Tim};
use crate::mac::{Aid, FrameControl, FrameSubtype, MacAddr};
use crate::udp::UdpDatagram;

/// Length of the 3-address MAC header used by management and data frames.
pub const MAC_HEADER_LEN: usize = 24;
/// Length of an ACK frame (frame control, duration, receiver address, FCS
/// excluded as everywhere in this crate).
pub const ACK_LEN: usize = 10;
/// Fixed beacon-body fields before the information elements
/// (timestamp, beacon interval, capability).
pub const BEACON_FIXED_LEN: usize = 12;

fn encode_mac_header(
    out: &mut Vec<u8>,
    fc: FrameControl,
    duration: u16,
    addr1: MacAddr,
    addr2: MacAddr,
    addr3: MacAddr,
    seq: u16,
) {
    out.extend_from_slice(&fc.to_u16().to_le_bytes());
    out.extend_from_slice(&duration.to_le_bytes());
    out.extend_from_slice(addr1.as_ref());
    out.extend_from_slice(addr2.as_ref());
    out.extend_from_slice(addr3.as_ref());
    out.extend_from_slice(&(seq << 4).to_le_bytes());
}

struct MacHeader {
    fc: FrameControl,
    addr1: MacAddr,
    addr2: MacAddr,
    #[allow(dead_code)]
    addr3: MacAddr,
    seq: u16,
}

fn decode_mac_header(buf: &[u8]) -> Result<(MacHeader, &[u8]), WifiError> {
    if buf.len() < MAC_HEADER_LEN {
        return Err(WifiError::Truncated {
            what: "MAC header",
            needed: MAC_HEADER_LEN,
            available: buf.len(),
        });
    }
    let fc = FrameControl::from_u16(u16::from_le_bytes([buf[0], buf[1]]))?;
    let take = |start: usize| -> MacAddr {
        let mut a = [0u8; 6];
        a.copy_from_slice(&buf[start..start + 6]);
        MacAddr::new(a)
    };
    let seq = u16::from_le_bytes([buf[22], buf[23]]) >> 4;
    Ok((
        MacHeader {
            fc,
            addr1: take(4),
            addr2: take(10),
            addr3: take(16),
            seq,
        },
        &buf[MAC_HEADER_LEN..],
    ))
}

/// A beacon management frame.
///
/// # Example
///
/// ```
/// use hide_wifi::frame::Beacon;
/// use hide_wifi::mac::MacAddr;
///
/// let beacon = Beacon::builder(MacAddr::station(0))
///     .beacon_interval_tu(100)
///     .dtim(0, 1)
///     .build();
/// let parsed = Beacon::parse(&beacon.to_bytes())?;
/// assert_eq!(parsed.beacon_interval_tu(), 100);
/// assert!(parsed.tim().unwrap().is_dtim());
/// # Ok::<(), hide_wifi::WifiError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Beacon {
    bssid: MacAddr,
    timestamp_us: u64,
    beacon_interval_tu: u16,
    capability: u16,
    elements: Vec<InformationElement>,
}

impl Beacon {
    /// Starts building a beacon for the given BSSID.
    pub fn builder(bssid: MacAddr) -> BeaconBuilder {
        BeaconBuilder {
            beacon: Beacon {
                bssid,
                timestamp_us: 0,
                beacon_interval_tu: 100,
                capability: 0x0001, // ESS
                elements: Vec::new(),
            },
            tim: None,
            ssid: None,
            rates: None,
        }
    }

    /// The BSSID (source and address-3 of the frame).
    pub fn bssid(&self) -> MacAddr {
        self.bssid
    }

    /// The 64-bit TSF timestamp in microseconds.
    pub fn timestamp_us(&self) -> u64 {
        self.timestamp_us
    }

    /// Beacon interval in time units.
    pub fn beacon_interval_tu(&self) -> u16 {
        self.beacon_interval_tu
    }

    /// All information elements in order.
    pub fn elements(&self) -> &[InformationElement] {
        &self.elements
    }

    /// The TIM element, if present.
    pub fn tim(&self) -> Option<&Tim> {
        self.elements.iter().find_map(|e| match e {
            InformationElement::Tim(tim) => Some(tim),
            _ => None,
        })
    }

    /// The SSID, when the beacon carries element 0.
    pub fn ssid(&self) -> Option<String> {
        self.elements.iter().find_map(|e| match e {
            InformationElement::Raw(raw) if raw.id == 0 => {
                Some(String::from_utf8_lossy(&raw.body).into_owned())
            }
            _ => None,
        })
    }

    /// The BTIM element, if present. Legacy beacons return `None`.
    pub fn btim(&self) -> Option<&Btim> {
        self.elements.iter().find_map(|e| match e {
            InformationElement::Btim(btim) => Some(btim),
            _ => None,
        })
    }

    /// Encodes the full frame (MAC header + body, FCS excluded).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len_bytes());
        let fc = FrameControl::new(FrameSubtype::Beacon);
        encode_mac_header(
            &mut out,
            fc,
            0,
            MacAddr::BROADCAST,
            self.bssid,
            self.bssid,
            0,
        );
        out.extend_from_slice(&self.timestamp_us.to_le_bytes());
        out.extend_from_slice(&self.beacon_interval_tu.to_le_bytes());
        out.extend_from_slice(&self.capability.to_le_bytes());
        for e in &self.elements {
            e.encode(&mut out);
        }
        out
    }

    /// Total encoded length in bytes (the `L_i` of Eq. (6)).
    pub fn len_bytes(&self) -> usize {
        MAC_HEADER_LEN
            + BEACON_FIXED_LEN
            + self
                .elements
                .iter()
                .map(InformationElement::encoded_len)
                .sum::<usize>()
    }

    /// Decodes a beacon frame.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::UnknownFrameType`] when the frame is not a
    /// beacon, [`WifiError::Truncated`] for short buffers, and element
    /// errors for malformed bodies.
    pub fn parse(buf: &[u8]) -> Result<Self, WifiError> {
        let (header, body) = decode_mac_header(buf)?;
        if header.fc.subtype() != FrameSubtype::Beacon {
            return Err(WifiError::UnknownFrameType {
                frame_type: header.fc.frame_type().to_bits(),
                subtype: header.fc.subtype().to_bits(),
            });
        }
        if body.len() < BEACON_FIXED_LEN {
            return Err(WifiError::Truncated {
                what: "beacon fixed fields",
                needed: BEACON_FIXED_LEN,
                available: body.len(),
            });
        }
        let timestamp_us = u64::from_le_bytes(body[0..8].try_into().expect("8 bytes"));
        let beacon_interval_tu = u16::from_le_bytes([body[8], body[9]]);
        let capability = u16::from_le_bytes([body[10], body[11]]);
        let elements = InformationElement::decode_all(&body[BEACON_FIXED_LEN..])?;
        Ok(Beacon {
            bssid: header.addr2,
            timestamp_us,
            beacon_interval_tu,
            capability,
            elements,
        })
    }
}

/// Builder for [`Beacon`] frames.
#[derive(Debug)]
pub struct BeaconBuilder {
    beacon: Beacon,
    tim: Option<Tim>,
    ssid: Option<String>,
    rates: Option<Vec<u8>>,
}

impl BeaconBuilder {
    /// Sets the TSF timestamp in microseconds.
    pub fn timestamp_us(mut self, ts: u64) -> Self {
        self.beacon.timestamp_us = ts;
        self
    }

    /// Sets the beacon interval in time units.
    pub fn beacon_interval_tu(mut self, tu: u16) -> Self {
        self.beacon.beacon_interval_tu = tu;
        self
    }

    /// Sets the network's SSID (prepended as the standard element 0).
    pub fn ssid(mut self, ssid: impl Into<String>) -> Self {
        self.ssid = Some(ssid.into());
        self
    }

    /// Advertises the 802.11b basic rates (1, 2, 5.5, 11 Mbit/s) in a
    /// Supported Rates element (ID 1), all marked basic.
    pub fn supported_rates_11b(mut self) -> Self {
        // Rates in 500 kbit/s units with the basic-rate bit (0x80).
        self.rates = Some(vec![0x82, 0x84, 0x8b, 0x96]);
        self
    }

    /// Adds a standard TIM element with the given DTIM count and period
    /// (no buffered traffic indicated).
    pub fn dtim(mut self, count: u8, period: u8) -> Self {
        self.tim = Some(Tim::new(
            count,
            period,
            false,
            crate::bitmap::PartialVirtualBitmap::new(),
        ));
        self
    }

    /// Replaces the TIM element entirely.
    pub fn tim(mut self, tim: Tim) -> Self {
        self.tim = Some(tim);
        self
    }

    /// Appends an information element after the TIM.
    pub fn element(mut self, element: InformationElement) -> Self {
        self.beacon.elements.push(element);
        self
    }

    /// Finishes the beacon. Standard element order is preserved:
    /// SSID (0), Supported Rates (1), TIM (5), then everything else.
    pub fn build(mut self) -> Beacon {
        if let Some(tim) = self.tim {
            self.beacon.elements.insert(0, InformationElement::Tim(tim));
        }
        if let Some(rates) = self.rates {
            self.beacon.elements.insert(
                0,
                InformationElement::Raw(crate::ie::RawElement { id: 1, body: rates }),
            );
        }
        if let Some(ssid) = self.ssid {
            self.beacon.elements.insert(
                0,
                InformationElement::Raw(crate::ie::RawElement {
                    id: 0,
                    body: ssid.into_bytes(),
                }),
            );
        }
        self.beacon
    }
}

/// The HIDE UDP Port Message: a management frame (type 00, subtype 1111)
/// from a client to its AP carrying an [`OpenUdpPorts`] element (Fig. 3).
///
/// # Example
///
/// ```
/// use hide_wifi::frame::UdpPortMessage;
/// use hide_wifi::mac::MacAddr;
///
/// let msg = UdpPortMessage::new(MacAddr::station(1), MacAddr::station(0), [5353u16, 1900])?;
/// let parsed = UdpPortMessage::parse(&msg.to_bytes())?;
/// assert_eq!(parsed.ports(), &[5353, 1900]);
/// # Ok::<(), hide_wifi::WifiError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpPortMessage {
    client: MacAddr,
    ap: MacAddr,
    open_ports: OpenUdpPorts,
    seq: u16,
    more_fragments: bool,
}

impl UdpPortMessage {
    /// Creates a UDP Port Message.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::FieldOverflow`] when more ports are given
    /// than one element can carry.
    pub fn new<I: IntoIterator<Item = u16>>(
        client: MacAddr,
        ap: MacAddr,
        ports: I,
    ) -> Result<Self, WifiError> {
        Ok(UdpPortMessage {
            client,
            ap,
            open_ports: OpenUdpPorts::new(ports)?,
            seq: 0,
            more_fragments: false,
        })
    }

    /// Splits an arbitrarily large port list into a fragment train:
    /// every message but the last carries the MAC *More Fragments* bit,
    /// and the AP reassembles them into one table refresh.
    ///
    /// An empty port list yields a single empty message.
    pub fn paginate<I: IntoIterator<Item = u16>>(
        client: MacAddr,
        ap: MacAddr,
        ports: I,
    ) -> Vec<UdpPortMessage> {
        let ports: Vec<u16> = ports.into_iter().collect();
        let chunks: Vec<&[u16]> = if ports.is_empty() {
            vec![&[][..]]
        } else {
            ports.chunks(OpenUdpPorts::MAX_PORTS).collect()
        };
        let n = chunks.len();
        chunks
            .into_iter()
            .enumerate()
            .map(|(i, chunk)| UdpPortMessage {
                client,
                ap,
                open_ports: OpenUdpPorts::new(chunk.iter().copied())
                    .expect("chunk fits one element"),
                seq: 0,
                more_fragments: i + 1 < n,
            })
            .collect()
    }

    /// Sets the MAC sequence number (used by retransmissions).
    #[must_use]
    pub fn with_seq(mut self, seq: u16) -> Self {
        self.seq = seq & 0x0fff;
        self
    }

    /// The client (transmitter) address.
    pub fn client(&self) -> MacAddr {
        self.client
    }

    /// The AP (receiver) address.
    pub fn ap(&self) -> MacAddr {
        self.ap
    }

    /// The reported open UDP ports.
    pub fn ports(&self) -> &[u16] {
        self.open_ports.ports()
    }

    /// The MAC sequence number.
    pub fn seq(&self) -> u16 {
        self.seq
    }

    /// Whether further fragments of this port report follow.
    pub fn more_fragments(&self) -> bool {
        self.more_fragments
    }

    /// Sets the *More Fragments* bit.
    #[must_use]
    pub fn with_more_fragments(mut self, more_fragments: bool) -> Self {
        self.more_fragments = more_fragments;
        self
    }

    /// Encodes the full frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len_bytes());
        let fc = FrameControl::new(FrameSubtype::UdpPortMessage)
            .with_more_fragments(self.more_fragments);
        encode_mac_header(&mut out, fc, 0, self.ap, self.client, self.ap, self.seq);
        InformationElement::OpenUdpPorts(self.open_ports.clone()).encode(&mut out);
        out
    }

    /// Total encoded length in bytes. Matches Eq. (19)'s MAC-layer part:
    /// `L_mac + 2 + 2·N_i` (the PHY preamble is airtime, not bytes).
    pub fn len_bytes(&self) -> usize {
        MAC_HEADER_LEN + 2 + 2 * self.open_ports.len()
    }

    /// Decodes a UDP Port Message.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::UnknownFrameType`] when the frame is not a
    /// UDP Port Message and [`WifiError::UnexpectedElementId`] when the
    /// body's first element is not Open UDP Ports.
    pub fn parse(buf: &[u8]) -> Result<Self, WifiError> {
        let (header, body) = decode_mac_header(buf)?;
        if header.fc.subtype() != FrameSubtype::UdpPortMessage {
            return Err(WifiError::UnknownFrameType {
                frame_type: header.fc.frame_type().to_bits(),
                subtype: header.fc.subtype().to_bits(),
            });
        }
        let (element, _) = InformationElement::decode(body)?;
        let InformationElement::OpenUdpPorts(open_ports) = element else {
            return Err(WifiError::UnexpectedElementId {
                expected: crate::ie::ELEMENT_ID_OPEN_UDP_PORTS,
                found: element.element_id(),
            });
        };
        Ok(UdpPortMessage {
            client: header.addr2,
            ap: header.addr1,
            open_ports,
            seq: header.seq,
            more_fragments: header.fc.more_fragments(),
        })
    }
}

/// An ACK control frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ack {
    receiver: MacAddr,
}

impl Ack {
    /// Creates an ACK addressed to `receiver`.
    pub fn new(receiver: MacAddr) -> Self {
        Ack { receiver }
    }

    /// The receiver address.
    pub fn receiver(&self) -> MacAddr {
        self.receiver
    }

    /// Encodes the frame (10 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ACK_LEN);
        out.extend_from_slice(&FrameControl::new(FrameSubtype::Ack).to_u16().to_le_bytes());
        out.extend_from_slice(&0u16.to_le_bytes());
        out.extend_from_slice(self.receiver.as_ref());
        out
    }

    /// Decodes an ACK frame.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::Truncated`] or [`WifiError::UnknownFrameType`]
    /// for buffers that are not a well-formed ACK.
    pub fn parse(buf: &[u8]) -> Result<Self, WifiError> {
        if buf.len() < ACK_LEN {
            return Err(WifiError::Truncated {
                what: "ack frame",
                needed: ACK_LEN,
                available: buf.len(),
            });
        }
        let fc = FrameControl::from_u16(u16::from_le_bytes([buf[0], buf[1]]))?;
        if fc.subtype() != FrameSubtype::Ack {
            return Err(WifiError::UnknownFrameType {
                frame_type: fc.frame_type().to_bits(),
                subtype: fc.subtype().to_bits(),
            });
        }
        let mut a = [0u8; 6];
        a.copy_from_slice(&buf[4..10]);
        Ok(Ack {
            receiver: MacAddr::new(a),
        })
    }
}

/// A PS-Poll control frame: a power-saving client's request to retrieve
/// one buffered unicast frame after seeing its TIM bit set.
///
/// Per 802.11, the duration field carries the client's AID with the two
/// top bits set.
///
/// # Example
///
/// ```
/// use hide_wifi::frame::PsPoll;
/// use hide_wifi::mac::{Aid, MacAddr};
///
/// let poll = PsPoll::new(Aid::new(7)?, MacAddr::station(0), MacAddr::station(7));
/// let parsed = PsPoll::parse(&poll.to_bytes())?;
/// assert_eq!(parsed.aid().value(), 7);
/// # Ok::<(), hide_wifi::WifiError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PsPoll {
    aid: Aid,
    bssid: MacAddr,
    transmitter: MacAddr,
}

/// Length of a PS-Poll frame (fc, aid, BSSID, TA).
pub const PS_POLL_LEN: usize = 16;

impl PsPoll {
    /// Creates a PS-Poll from the client `transmitter` to `bssid`.
    pub fn new(aid: Aid, bssid: MacAddr, transmitter: MacAddr) -> Self {
        PsPoll {
            aid,
            bssid,
            transmitter,
        }
    }

    /// The polling client's association ID.
    pub fn aid(&self) -> Aid {
        self.aid
    }

    /// The AP being polled.
    pub fn bssid(&self) -> MacAddr {
        self.bssid
    }

    /// The polling client's address.
    pub fn transmitter(&self) -> MacAddr {
        self.transmitter
    }

    /// Encodes the frame (16 bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(PS_POLL_LEN);
        out.extend_from_slice(
            &FrameControl::new(FrameSubtype::PsPoll)
                .to_u16()
                .to_le_bytes(),
        );
        // AID with the two most significant bits set, per the standard.
        out.extend_from_slice(&(self.aid.value() | 0xc000).to_le_bytes());
        out.extend_from_slice(self.bssid.as_ref());
        out.extend_from_slice(self.transmitter.as_ref());
        out
    }

    /// Decodes a PS-Poll frame.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::Truncated`] for short buffers,
    /// [`WifiError::UnknownFrameType`] for other frames and
    /// [`WifiError::InvalidAid`] for an out-of-range AID field.
    pub fn parse(buf: &[u8]) -> Result<Self, WifiError> {
        if buf.len() < PS_POLL_LEN {
            return Err(WifiError::Truncated {
                what: "ps-poll frame",
                needed: PS_POLL_LEN,
                available: buf.len(),
            });
        }
        let fc = FrameControl::from_u16(u16::from_le_bytes([buf[0], buf[1]]))?;
        if fc.subtype() != FrameSubtype::PsPoll {
            return Err(WifiError::UnknownFrameType {
                frame_type: fc.frame_type().to_bits(),
                subtype: fc.subtype().to_bits(),
            });
        }
        let aid = Aid::new(u16::from_le_bytes([buf[2], buf[3]]) & 0x3fff)?;
        let take = |start: usize| -> MacAddr {
            let mut a = [0u8; 6];
            a.copy_from_slice(&buf[start..start + 6]);
            MacAddr::new(a)
        };
        Ok(PsPoll {
            aid,
            bssid: take(4),
            transmitter: take(10),
        })
    }
}

/// A UDP-padded broadcast data frame: a MAC data frame addressed to the
/// broadcast address whose body is an LLC/SNAP + IPv4 + UDP stack.
///
/// # Example
///
/// ```
/// use hide_wifi::frame::BroadcastDataFrame;
/// use hide_wifi::mac::MacAddr;
/// use hide_wifi::udp::UdpDatagram;
///
/// let dgram = UdpDatagram::new([10, 0, 0, 9], [255; 4], 5000, 1900, vec![0; 64]);
/// let frame = BroadcastDataFrame::new(MacAddr::station(0), dgram, false);
/// let parsed = BroadcastDataFrame::parse(&frame.to_bytes())?;
/// assert_eq!(parsed.udp_dst_port()?, 1900);
/// # Ok::<(), hide_wifi::WifiError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastDataFrame {
    transmitter: MacAddr,
    body: Vec<u8>,
    more_data: bool,
}

impl BroadcastDataFrame {
    /// Creates a broadcast data frame carrying `datagram`.
    ///
    /// `more_data` is the MAC *More Data* bit: the AP sets it on every
    /// buffered broadcast frame except the last of a DTIM delivery, so
    /// power-saving radios know whether to keep listening (it drives
    /// `d_more(i)` in Eq. (10)).
    pub fn new(transmitter: MacAddr, datagram: UdpDatagram, more_data: bool) -> Self {
        BroadcastDataFrame {
            transmitter,
            body: datagram.to_bytes(),
            more_data,
        }
    }

    /// Creates a frame from a pre-encoded body (used when replaying
    /// captured traces where only lengths and ports are known).
    pub fn from_raw_body(transmitter: MacAddr, body: Vec<u8>, more_data: bool) -> Self {
        BroadcastDataFrame {
            transmitter,
            body,
            more_data,
        }
    }

    /// The transmitter address (the AP when forwarded downstream).
    pub fn transmitter(&self) -> MacAddr {
        self.transmitter
    }

    /// The *More Data* bit.
    pub fn more_data(&self) -> bool {
        self.more_data
    }

    /// Sets the *More Data* bit (the AP adjusts it while queueing).
    pub fn set_more_data(&mut self, more_data: bool) {
        self.more_data = more_data;
    }

    /// The frame body (LLC/SNAP + IPv4 + UDP stack).
    pub fn body(&self) -> &[u8] {
        &self.body
    }

    /// Extracts the UDP destination port from the body.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::NotUdpPayload`] when the body is not a
    /// UDP-padded payload — such frames fall outside HIDE's scope.
    pub fn udp_dst_port(&self) -> Result<u16, WifiError> {
        UdpDatagram::peek_dst_port(&self.body)
    }

    /// Fully parses the carried datagram.
    ///
    /// # Errors
    ///
    /// Same conditions as [`UdpDatagram::parse`].
    pub fn datagram(&self) -> Result<UdpDatagram, WifiError> {
        UdpDatagram::parse(&self.body)
    }

    /// Encodes the full frame.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len_bytes());
        let fc = FrameControl::new(FrameSubtype::Data).with_more_data(self.more_data);
        encode_mac_header(
            &mut out,
            fc,
            0,
            MacAddr::BROADCAST,
            self.transmitter,
            self.transmitter,
            0,
        );
        out.extend_from_slice(&self.body);
        out
    }

    /// Total encoded length in bytes.
    pub fn len_bytes(&self) -> usize {
        MAC_HEADER_LEN + self.body.len()
    }

    /// Decodes a broadcast data frame.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::UnknownFrameType`] when the frame is not a
    /// data frame.
    pub fn parse(buf: &[u8]) -> Result<Self, WifiError> {
        let (header, body) = decode_mac_header(buf)?;
        if header.fc.subtype() != FrameSubtype::Data {
            return Err(WifiError::UnknownFrameType {
                frame_type: header.fc.frame_type().to_bits(),
                subtype: header.fc.subtype().to_bits(),
            });
        }
        Ok(BroadcastDataFrame {
            transmitter: header.addr2,
            body: body.to_vec(),
            more_data: header.fc.more_data(),
        })
    }
}

/// Any frame this crate can decode, with a single dispatching parser.
///
/// # Example
///
/// ```
/// use hide_wifi::frame::{AnyFrame, Beacon};
/// use hide_wifi::mac::MacAddr;
///
/// let beacon = Beacon::builder(MacAddr::station(0)).dtim(0, 1).build();
/// match AnyFrame::parse(&beacon.to_bytes())? {
///     AnyFrame::Beacon(b) => assert!(b.tim().is_some()),
///     other => panic!("expected a beacon, got {other:?}"),
/// }
/// # Ok::<(), hide_wifi::WifiError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AnyFrame {
    /// A beacon.
    Beacon(Beacon),
    /// A HIDE UDP Port Message.
    UdpPortMessage(UdpPortMessage),
    /// An ACK.
    Ack(Ack),
    /// A PS-Poll.
    PsPoll(PsPoll),
    /// A broadcast (or other) data frame.
    Data(BroadcastDataFrame),
    /// An association request.
    AssociationRequest(crate::assoc::AssociationRequest),
    /// An association response.
    AssociationResponse(crate::assoc::AssociationResponse),
    /// A disassociation notice.
    Disassociation(crate::assoc::Disassociation),
}

impl AnyFrame {
    /// Decodes any supported frame by inspecting the frame-control
    /// field first.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::Truncated`] for buffers shorter than a
    /// frame-control field, [`WifiError::UnknownFrameType`] for
    /// unmodelled types, and the per-frame errors for malformed bodies.
    pub fn parse(buf: &[u8]) -> Result<Self, WifiError> {
        if buf.len() < 2 {
            return Err(WifiError::Truncated {
                what: "frame control",
                needed: 2,
                available: buf.len(),
            });
        }
        let fc = FrameControl::from_u16(u16::from_le_bytes([buf[0], buf[1]]))?;
        Ok(match fc.subtype() {
            FrameSubtype::Beacon => AnyFrame::Beacon(Beacon::parse(buf)?),
            FrameSubtype::UdpPortMessage => AnyFrame::UdpPortMessage(UdpPortMessage::parse(buf)?),
            FrameSubtype::Ack => AnyFrame::Ack(Ack::parse(buf)?),
            FrameSubtype::PsPoll => AnyFrame::PsPoll(PsPoll::parse(buf)?),
            FrameSubtype::Data => AnyFrame::Data(BroadcastDataFrame::parse(buf)?),
            FrameSubtype::AssociationRequest => {
                AnyFrame::AssociationRequest(crate::assoc::AssociationRequest::parse(buf)?)
            }
            FrameSubtype::AssociationResponse => {
                AnyFrame::AssociationResponse(crate::assoc::AssociationResponse::parse(buf)?)
            }
            FrameSubtype::Disassociation => {
                AnyFrame::Disassociation(crate::assoc::Disassociation::parse(buf)?)
            }
        })
    }

    /// The subtype of the decoded frame.
    pub fn subtype(&self) -> FrameSubtype {
        match self {
            AnyFrame::Beacon(_) => FrameSubtype::Beacon,
            AnyFrame::UdpPortMessage(_) => FrameSubtype::UdpPortMessage,
            AnyFrame::Ack(_) => FrameSubtype::Ack,
            AnyFrame::PsPoll(_) => FrameSubtype::PsPoll,
            AnyFrame::Data(_) => FrameSubtype::Data,
            AnyFrame::AssociationRequest(_) => FrameSubtype::AssociationRequest,
            AnyFrame::AssociationResponse(_) => FrameSubtype::AssociationResponse,
            AnyFrame::Disassociation(_) => FrameSubtype::Disassociation,
        }
    }

    /// Re-encodes the frame to its wire bytes.
    ///
    /// Inverse of [`AnyFrame::parse`]: for every buffer that parses,
    /// `AnyFrame::parse(buf)?.to_bytes() == buf`.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self {
            AnyFrame::Beacon(f) => f.to_bytes(),
            AnyFrame::UdpPortMessage(f) => f.to_bytes(),
            AnyFrame::Ack(f) => f.to_bytes(),
            AnyFrame::PsPoll(f) => f.to_bytes(),
            AnyFrame::Data(f) => f.to_bytes(),
            AnyFrame::AssociationRequest(f) => f.to_bytes(),
            AnyFrame::AssociationResponse(f) => f.to_bytes(),
            AnyFrame::Disassociation(f) => f.to_bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmap::PartialVirtualBitmap;
    use crate::mac::Aid;

    #[test]
    fn any_frame_dispatches_every_type() {
        use crate::assoc::{AssociationRequest, AssociationResponse, Disassociation};
        let aid = Aid::new(3).unwrap();
        let frames: Vec<(Vec<u8>, FrameSubtype)> = vec![
            (
                Beacon::builder(MacAddr::station(0))
                    .dtim(0, 1)
                    .build()
                    .to_bytes(),
                FrameSubtype::Beacon,
            ),
            (
                UdpPortMessage::new(MacAddr::station(1), MacAddr::station(0), [80u16])
                    .unwrap()
                    .to_bytes(),
                FrameSubtype::UdpPortMessage,
            ),
            (Ack::new(MacAddr::station(1)).to_bytes(), FrameSubtype::Ack),
            (
                PsPoll::new(aid, MacAddr::station(0), MacAddr::station(1)).to_bytes(),
                FrameSubtype::PsPoll,
            ),
            (
                BroadcastDataFrame::new(
                    MacAddr::station(0),
                    UdpDatagram::new([1, 1, 1, 1], [255; 4], 1, 2, vec![]),
                    false,
                )
                .to_bytes(),
                FrameSubtype::Data,
            ),
            (
                AssociationRequest::new(MacAddr::station(1), MacAddr::station(0), "x").to_bytes(),
                FrameSubtype::AssociationRequest,
            ),
            (
                AssociationResponse::success(MacAddr::station(0), MacAddr::station(1), aid)
                    .to_bytes(),
                FrameSubtype::AssociationResponse,
            ),
            (
                Disassociation::new(MacAddr::station(1), MacAddr::station(0), 8).to_bytes(),
                FrameSubtype::Disassociation,
            ),
        ];
        for (bytes, expected) in frames {
            let parsed = AnyFrame::parse(&bytes).unwrap();
            assert_eq!(parsed.subtype(), expected);
        }
    }

    #[test]
    fn any_frame_rejects_garbage() {
        assert!(AnyFrame::parse(&[]).is_err());
        assert!(AnyFrame::parse(&[0xff, 0xff, 0, 0]).is_err());
    }

    #[test]
    fn beacon_round_trip_with_tim_and_btim() {
        let mut flags = PartialVirtualBitmap::new();
        flags.set(Aid::new(4).unwrap());
        let beacon = Beacon::builder(MacAddr::station(0))
            .timestamp_us(123_456)
            .beacon_interval_tu(100)
            .dtim(0, 1)
            .element(InformationElement::Btim(Btim::new(flags)))
            .build();
        let bytes = beacon.to_bytes();
        assert_eq!(bytes.len(), beacon.len_bytes());
        let parsed = Beacon::parse(&bytes).unwrap();
        assert_eq!(parsed, beacon);
        assert!(parsed.tim().is_some());
        assert!(parsed.btim().unwrap().is_set(Aid::new(4).unwrap()));
    }

    #[test]
    fn legacy_beacon_has_no_btim() {
        let beacon = Beacon::builder(MacAddr::station(0)).dtim(0, 3).build();
        let parsed = Beacon::parse(&beacon.to_bytes()).unwrap();
        assert!(parsed.btim().is_none());
        assert_eq!(parsed.tim().unwrap().dtim_period(), 3);
    }

    #[test]
    fn beacon_with_ssid_and_rates_round_trips() {
        let beacon = Beacon::builder(MacAddr::station(0))
            .ssid("HideNet")
            .supported_rates_11b()
            .dtim(0, 1)
            .build();
        let parsed = Beacon::parse(&beacon.to_bytes()).unwrap();
        assert_eq!(parsed.ssid().as_deref(), Some("HideNet"));
        // Element order: SSID, rates, TIM.
        assert_eq!(parsed.elements()[0].element_id(), 0);
        assert_eq!(parsed.elements()[1].element_id(), 1);
        assert_eq!(parsed.elements()[2].element_id(), 5);
        assert!(parsed.tim().is_some());
    }

    #[test]
    fn tim_is_first_element() {
        let beacon = Beacon::builder(MacAddr::station(0))
            .element(InformationElement::Btim(Btim::new(
                PartialVirtualBitmap::new(),
            )))
            .dtim(0, 1)
            .build();
        assert!(matches!(beacon.elements()[0], InformationElement::Tim(_)));
    }

    #[test]
    fn beacon_rejects_non_beacon() {
        let msg = UdpPortMessage::new(MacAddr::station(1), MacAddr::station(0), [80u16]).unwrap();
        assert!(Beacon::parse(&msg.to_bytes()).is_err());
    }

    #[test]
    fn udp_port_message_round_trip() {
        let ports: Vec<u16> = (1000..1100).collect();
        let msg = UdpPortMessage::new(MacAddr::station(7), MacAddr::station(0), ports.clone())
            .unwrap()
            .with_seq(99);
        let bytes = msg.to_bytes();
        assert_eq!(bytes.len(), msg.len_bytes());
        let parsed = UdpPortMessage::parse(&bytes).unwrap();
        assert_eq!(parsed.ports(), &ports[..]);
        assert_eq!(parsed.seq(), 99);
        assert_eq!(parsed.client(), MacAddr::station(7));
        assert_eq!(parsed.ap(), MacAddr::station(0));
    }

    #[test]
    fn udp_port_message_length_matches_eq19() {
        // Eq. (19): L = Lmac + 2 + 2*Ni bytes (MAC part; PHY is airtime).
        let msg = UdpPortMessage::new(
            MacAddr::station(1),
            MacAddr::station(0),
            (0..100).map(|i| 1000 + i),
        )
        .unwrap();
        assert_eq!(msg.len_bytes(), MAC_HEADER_LEN + 2 + 2 * 100);
    }

    #[test]
    fn paginate_splits_large_port_lists() {
        let ports: Vec<u16> = (0..300).collect();
        let msgs =
            UdpPortMessage::paginate(MacAddr::station(1), MacAddr::station(0), ports.clone());
        assert_eq!(msgs.len(), 3); // 127 + 127 + 46
        assert!(msgs[0].more_fragments());
        assert!(msgs[1].more_fragments());
        assert!(!msgs[2].more_fragments());
        let reassembled: Vec<u16> = msgs.iter().flat_map(|m| m.ports().to_vec()).collect();
        assert_eq!(reassembled, ports);
        // The bit survives the wire.
        let parsed = UdpPortMessage::parse(&msgs[0].to_bytes()).unwrap();
        assert!(parsed.more_fragments());
        let parsed = UdpPortMessage::parse(&msgs[2].to_bytes()).unwrap();
        assert!(!parsed.more_fragments());
    }

    #[test]
    fn paginate_small_list_is_single_message() {
        let msgs = UdpPortMessage::paginate(MacAddr::station(1), MacAddr::station(0), [80u16]);
        assert_eq!(msgs.len(), 1);
        assert!(!msgs[0].more_fragments());
        let msgs = UdpPortMessage::paginate(MacAddr::station(1), MacAddr::station(0), []);
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].ports().is_empty());
    }

    #[test]
    fn ack_round_trip() {
        let ack = Ack::new(MacAddr::station(3));
        let bytes = ack.to_bytes();
        assert_eq!(bytes.len(), ACK_LEN);
        assert_eq!(Ack::parse(&bytes).unwrap(), ack);
    }

    #[test]
    fn ack_rejects_data_frame() {
        let dgram = UdpDatagram::new([1, 1, 1, 1], [255; 4], 1, 2, vec![]);
        let frame = BroadcastDataFrame::new(MacAddr::station(0), dgram, false);
        assert!(Ack::parse(&frame.to_bytes()).is_err());
    }

    #[test]
    fn broadcast_frame_round_trip() {
        let dgram = UdpDatagram::new([10, 0, 0, 1], [255; 4], 3000, 17500, vec![9; 40]);
        let frame = BroadcastDataFrame::new(MacAddr::station(0), dgram.clone(), true);
        let parsed = BroadcastDataFrame::parse(&frame.to_bytes()).unwrap();
        assert_eq!(parsed, frame);
        assert!(parsed.more_data());
        assert_eq!(parsed.udp_dst_port().unwrap(), 17500);
        assert_eq!(parsed.datagram().unwrap(), dgram);
    }

    #[test]
    fn more_data_bit_survives_round_trip() {
        let dgram = UdpDatagram::new([10, 0, 0, 1], [255; 4], 1, 2, vec![]);
        for md in [false, true] {
            let frame = BroadcastDataFrame::new(MacAddr::station(0), dgram.clone(), md);
            let parsed = BroadcastDataFrame::parse(&frame.to_bytes()).unwrap();
            assert_eq!(parsed.more_data(), md);
        }
    }

    #[test]
    fn ps_poll_round_trip() {
        let poll = PsPoll::new(
            Aid::new(1234).unwrap(),
            MacAddr::station(0),
            MacAddr::station(9),
        );
        let bytes = poll.to_bytes();
        assert_eq!(bytes.len(), PS_POLL_LEN);
        let parsed = PsPoll::parse(&bytes).unwrap();
        assert_eq!(parsed, poll);
    }

    #[test]
    fn ps_poll_sets_top_aid_bits() {
        let poll = PsPoll::new(
            Aid::new(5).unwrap(),
            MacAddr::station(0),
            MacAddr::station(1),
        );
        let bytes = poll.to_bytes();
        let field = u16::from_le_bytes([bytes[2], bytes[3]]);
        assert_eq!(field & 0xc000, 0xc000);
    }

    #[test]
    fn ps_poll_rejects_other_frames() {
        let ack = Ack::new(MacAddr::station(1));
        assert!(PsPoll::parse(&ack.to_bytes()).is_err());
        assert!(PsPoll::parse(&[0u8; 4]).is_err());
    }

    #[test]
    fn non_udp_body_reports_not_udp() {
        let frame = BroadcastDataFrame::from_raw_body(MacAddr::station(0), vec![0u8; 60], false);
        assert!(frame.udp_dst_port().is_err());
    }
}
