//! The 802.11 partial virtual bitmap.
//!
//! Both the standard TIM element and the HIDE BTIM element carry a
//! compressed view of a 251-byte *virtual bitmap* in which bit `k` belongs
//! to the client with AID `k`. Compression (Fig. 5 of the paper) trims
//! leading zero bytes down to an even count `N1` and trailing zero bytes
//! after the last non-zero byte `N2`; only bytes `N1..=N2` are
//! transmitted, together with `Offset = N1`.

use crate::error::WifiError;
use crate::mac::{Aid, MAX_AID};
use std::fmt;

/// Number of bytes in the full virtual bitmap (AIDs 0..=2007).
pub const VIRTUAL_BITMAP_BYTES: usize = 251;

/// A full virtual bitmap over association IDs, with lossless
/// trim/expand conversion to the transmitted partial form.
///
/// # Example
///
/// ```
/// use hide_wifi::bitmap::PartialVirtualBitmap;
/// use hide_wifi::mac::Aid;
///
/// let mut b = PartialVirtualBitmap::new();
/// b.set(Aid::new(21)?);
/// assert!(b.is_set(Aid::new(21)?));
///
/// let trimmed = b.trim();
/// // AID 21 lives in octet 2, so one leading zero-byte pair is trimmed.
/// assert_eq!(trimmed.offset(), 2);
/// assert_eq!(trimmed.bytes(), &[0b0010_0000]);
/// # Ok::<(), hide_wifi::WifiError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartialVirtualBitmap {
    // Inline array, not a Vec: the AP rebuilds flags every DTIM beacon,
    // and an inline bitmap makes construction/reset allocation-free.
    bits: [u8; VIRTUAL_BITMAP_BYTES],
}

impl PartialVirtualBitmap {
    /// Creates an empty bitmap (all AIDs clear).
    pub fn new() -> Self {
        PartialVirtualBitmap {
            bits: [0u8; VIRTUAL_BITMAP_BYTES],
        }
    }

    /// Sets the bit for `aid`.
    pub fn set(&mut self, aid: Aid) {
        self.bits[aid.octet()] |= 1 << aid.bit();
    }

    /// Clears the bit for `aid`.
    pub fn clear(&mut self, aid: Aid) {
        self.bits[aid.octet()] &= !(1 << aid.bit());
    }

    /// Clears every bit.
    pub fn reset(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = 0);
    }

    /// Returns whether the bit for `aid` is set.
    pub fn is_set(&self, aid: Aid) -> bool {
        self.bits[aid.octet()] & (1 << aid.bit()) != 0
    }

    /// Returns `true` when no bit is set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|&b| b == 0)
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.bits.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Iterates over the AIDs whose bits are set, in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = Aid> + '_ {
        (1..=MAX_AID)
            .map(|v| Aid::new(v).expect("range is valid"))
            .filter(move |aid| self.is_set(*aid))
    }

    /// Produces the compressed (trimmed) representation transmitted on
    /// air, per Fig. 5 of the paper: leading zero bytes are trimmed to
    /// the largest even `N1`, trailing zero bytes after the last
    /// non-zero byte are dropped.
    pub fn trim(&self) -> TrimmedBitmap {
        let mut bytes = Vec::new();
        let offset = self.trim_into(&mut bytes);
        TrimmedBitmap { offset, bytes }
    }

    /// Like [`PartialVirtualBitmap::trim`], but writes the transmitted
    /// bytes into `scratch` (cleared first) and returns the offset
    /// `N1` — the allocation-free path used by per-beacon encoders,
    /// which keep one scratch buffer alive across DTIM cycles.
    pub fn trim_into(&self, scratch: &mut Vec<u8>) -> usize {
        scratch.clear();
        self.append_trimmed_to(scratch)
    }

    /// Appends the trimmed bitmap bytes to `out` (without clearing it)
    /// and returns the offset `N1`. Lets encoders build element bodies
    /// in one pass over a single reused buffer.
    pub fn append_trimmed_to(&self, out: &mut Vec<u8>) -> usize {
        let (n1, len) = self.trimmed_span();
        if len == 1 && self.bits[n1] == 0 {
            // All zero: the standard encodes a single zero byte at offset 0.
            out.push(0);
        } else {
            out.extend_from_slice(&self.bits[n1..n1 + len]);
        }
        n1
    }

    /// The `(offset, length)` the trimmed encoding will occupy, without
    /// materializing it — `N1` and `N2 - N1 + 1` of Fig. 5 (an all-zero
    /// bitmap reports `(0, 1)` for the mandatory single zero byte).
    pub fn trimmed_span(&self) -> (usize, usize) {
        let Some(first) = self.bits.iter().position(|&b| b != 0) else {
            return (0, 1);
        };
        let last = self
            .bits
            .iter()
            .rposition(|&b| b != 0)
            .expect("nonzero exists");
        let n1 = first & !1; // round down to even
        (n1, last - n1 + 1)
    }

    /// Reconstructs a full bitmap from a trimmed representation.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::OddBitmapOffset`] when the offset is odd and
    /// [`WifiError::BitmapTooLong`] when `offset + bytes` exceeds the
    /// virtual bitmap size.
    pub fn from_trimmed(trimmed: &TrimmedBitmap) -> Result<Self, WifiError> {
        if !trimmed.offset.is_multiple_of(2) {
            return Err(WifiError::OddBitmapOffset(trimmed.offset));
        }
        if trimmed.offset + trimmed.bytes.len() > VIRTUAL_BITMAP_BYTES {
            return Err(WifiError::BitmapTooLong(
                trimmed.offset + trimmed.bytes.len(),
            ));
        }
        let mut full = PartialVirtualBitmap::new();
        full.bits[trimmed.offset..trimmed.offset + trimmed.bytes.len()]
            .copy_from_slice(&trimmed.bytes);
        Ok(full)
    }
}

impl Default for PartialVirtualBitmap {
    fn default() -> Self {
        PartialVirtualBitmap::new()
    }
}

impl fmt::Debug for PartialVirtualBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let set: Vec<u16> = (1..=MAX_AID)
            .filter(|&v| {
                let aid = Aid::new(v).expect("in range");
                self.is_set(aid)
            })
            .collect();
        f.debug_struct("PartialVirtualBitmap")
            .field("set_aids", &set)
            .finish()
    }
}

impl FromIterator<Aid> for PartialVirtualBitmap {
    fn from_iter<I: IntoIterator<Item = Aid>>(iter: I) -> Self {
        let mut bitmap = PartialVirtualBitmap::new();
        for aid in iter {
            bitmap.set(aid);
        }
        bitmap
    }
}

impl Extend<Aid> for PartialVirtualBitmap {
    fn extend<I: IntoIterator<Item = Aid>>(&mut self, iter: I) {
        for aid in iter {
            self.set(aid);
        }
    }
}

/// The on-air compressed form of a [`PartialVirtualBitmap`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TrimmedBitmap {
    offset: usize,
    bytes: Vec<u8>,
}

impl TrimmedBitmap {
    /// Builds a trimmed bitmap from raw parts (e.g. decoded from air).
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::OddBitmapOffset`] for an odd offset,
    /// [`WifiError::BitmapTooLong`] when the bitmap exceeds the virtual
    /// bitmap size, and [`WifiError::BadElementLength`] when `bytes` is
    /// empty.
    pub fn from_parts(offset: usize, bytes: Vec<u8>) -> Result<Self, WifiError> {
        if !offset.is_multiple_of(2) {
            return Err(WifiError::OddBitmapOffset(offset));
        }
        if bytes.is_empty() {
            return Err(WifiError::BadElementLength {
                element_id: 0,
                declared: 0,
            });
        }
        if offset + bytes.len() > VIRTUAL_BITMAP_BYTES {
            return Err(WifiError::BitmapTooLong(offset + bytes.len()));
        }
        Ok(TrimmedBitmap { offset, bytes })
    }

    /// The byte offset `N1` of the first transmitted byte.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// The transmitted bitmap bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Total transmitted length in bytes (offset field excluded).
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` when the (single mandatory) byte is zero.
    pub fn is_empty(&self) -> bool {
        self.bytes.iter().all(|&b| b == 0)
    }

    /// Whether `aid`'s bit is set, without expanding to a full bitmap.
    pub fn is_set(&self, aid: Aid) -> bool {
        let octet = aid.octet();
        if octet < self.offset || octet >= self.offset + self.bytes.len() {
            return false;
        }
        self.bytes[octet - self.offset] & (1 << aid.bit()) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(v: u16) -> Aid {
        Aid::new(v).unwrap()
    }

    #[test]
    fn empty_bitmap_trims_to_single_zero_byte() {
        let b = PartialVirtualBitmap::new();
        let t = b.trim();
        assert_eq!(t.offset(), 0);
        assert_eq!(t.bytes(), &[0]);
        assert!(t.is_empty());
    }

    #[test]
    fn set_clear_is_set() {
        let mut b = PartialVirtualBitmap::new();
        assert!(!b.is_set(aid(7)));
        b.set(aid(7));
        assert!(b.is_set(aid(7)));
        b.clear(aid(7));
        assert!(!b.is_set(aid(7)));
        assert!(b.is_empty());
    }

    #[test]
    fn count_and_reset() {
        let mut b = PartialVirtualBitmap::new();
        for v in [1u16, 2, 300, 2007] {
            b.set(aid(v));
        }
        assert_eq!(b.count(), 4);
        b.reset();
        assert_eq!(b.count(), 0);
    }

    #[test]
    fn trim_offset_is_even() {
        // AID 24 -> octet 3; trimming must round down to N1 = 2.
        let mut b = PartialVirtualBitmap::new();
        b.set(aid(24));
        let t = b.trim();
        assert_eq!(t.offset(), 2);
        assert_eq!(t.bytes().len(), 2);
        assert_eq!(t.bytes()[0], 0); // padding byte at octet 2
        assert_eq!(t.bytes()[1], 1 << 0); // AID 24 = octet 3, bit 0
    }

    #[test]
    fn trim_drops_trailing_zeros() {
        let mut b = PartialVirtualBitmap::new();
        b.set(aid(1));
        let t = b.trim();
        assert_eq!(t.offset(), 0);
        assert_eq!(t.bytes(), &[0b10]);
    }

    #[test]
    fn trim_expand_round_trip() {
        let mut b = PartialVirtualBitmap::new();
        for v in [3u16, 17, 120, 121, 1999] {
            b.set(aid(v));
        }
        let t = b.trim();
        let back = PartialVirtualBitmap::from_trimmed(&t).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn trimmed_is_set_matches_full() {
        let mut b = PartialVirtualBitmap::new();
        for v in [10u16, 55, 900] {
            b.set(aid(v));
        }
        let t = b.trim();
        for v in 1..=MAX_AID {
            assert_eq!(t.is_set(aid(v)), b.is_set(aid(v)), "aid {v}");
        }
    }

    #[test]
    fn from_parts_validation() {
        assert!(matches!(
            TrimmedBitmap::from_parts(1, vec![0xff]),
            Err(WifiError::OddBitmapOffset(1))
        ));
        assert!(TrimmedBitmap::from_parts(0, vec![]).is_err());
        assert!(matches!(
            TrimmedBitmap::from_parts(250, vec![0, 0]),
            Err(WifiError::BitmapTooLong(_))
        ));
        assert!(TrimmedBitmap::from_parts(250, vec![0xff]).is_ok());
    }

    #[test]
    fn from_trimmed_rejects_bad_input() {
        let t = TrimmedBitmap {
            offset: 3,
            bytes: vec![1],
        };
        assert!(PartialVirtualBitmap::from_trimmed(&t).is_err());
        let t = TrimmedBitmap {
            offset: 0,
            bytes: vec![0; 252],
        };
        assert!(PartialVirtualBitmap::from_trimmed(&t).is_err());
    }

    #[test]
    fn collect_from_iterator() {
        let b: PartialVirtualBitmap = [aid(4), aid(9)].into_iter().collect();
        assert!(b.is_set(aid(4)));
        assert!(b.is_set(aid(9)));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn extend_adds_bits() {
        let mut b = PartialVirtualBitmap::new();
        b.extend([aid(2), aid(2000)]);
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn paper_figure5_example_shape() {
        // Fig. 5: all-zero prefix of N1 bytes, data in N1..=N2, zero tail.
        let mut b = PartialVirtualBitmap::new();
        // Put bits in octets 4 and 6 only.
        b.set(aid(4 * 8 + 1)); // octet 4
        b.set(aid(6 * 8 + 5)); // octet 6
        let t = b.trim();
        assert_eq!(t.offset(), 4);
        assert_eq!(t.bytes().len(), 3); // octets 4, 5, 6
        assert_eq!(t.bytes()[1], 0);
    }

    #[test]
    fn trim_into_reuses_scratch_and_matches_trim() {
        let mut scratch = Vec::new();
        for aids in [vec![], vec![1u16], vec![24], vec![3, 17, 120, 1999]] {
            let mut b = PartialVirtualBitmap::new();
            for v in aids {
                b.set(aid(v));
            }
            let offset = b.trim_into(&mut scratch);
            let t = b.trim();
            assert_eq!(offset, t.offset());
            assert_eq!(&scratch, t.bytes());
        }
    }

    #[test]
    fn debug_lists_set_aids() {
        let mut b = PartialVirtualBitmap::new();
        b.set(aid(42));
        let dbg = format!("{b:?}");
        assert!(dbg.contains("42"));
    }
}
