//! 802.11 information elements.
//!
//! Three elements matter to HIDE:
//!
//! * the standard **TIM** (element ID 5) with its DTIM count/period and the
//!   broadcast-buffered bit in Bitmap Control (Fig. 1 of the paper),
//! * the new **Open UDP Ports** element (ID 200, Fig. 3) carried in UDP
//!   Port Messages, and
//! * the new **Broadcast Traffic Indication Map (BTIM)** element (ID 201,
//!   Fig. 4) carried in beacons, whose bitmap is compressed per Fig. 5.
//!
//! Unknown elements are preserved as [`RawElement`]s so legacy elements
//! pass through untouched — the coexistence property Section III.D relies
//! on.

use crate::bitmap::{PartialVirtualBitmap, TrimmedBitmap};
use crate::error::WifiError;
use crate::mac::Aid;
use hide_obs::{Counter, Distribution, MetricsSink, TraceEventKind, TraceSink};

/// Element ID of the standard Traffic Indication Map.
pub const ELEMENT_ID_TIM: u8 = 5;
/// Element ID the paper assigns to Open UDP Ports (reserved in 802.11).
pub const ELEMENT_ID_OPEN_UDP_PORTS: u8 = 200;
/// Element ID the paper assigns to the BTIM (reserved in 802.11).
pub const ELEMENT_ID_BTIM: u8 = 201;

/// Maximum information-element body length.
pub const MAX_ELEMENT_BODY: usize = 255;

/// The standard Traffic Indication Map element.
///
/// # Example
///
/// ```
/// use hide_wifi::ie::Tim;
/// use hide_wifi::bitmap::PartialVirtualBitmap;
/// use hide_wifi::mac::Aid;
///
/// let mut unicast = PartialVirtualBitmap::new();
/// unicast.set(Aid::new(3)?);
/// let tim = Tim::new(0, 1, true, unicast);
/// assert!(tim.broadcast_buffered());
/// assert!(tim.traffic_for(Aid::new(3)?));
/// # Ok::<(), hide_wifi::WifiError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tim {
    dtim_count: u8,
    dtim_period: u8,
    broadcast_buffered: bool,
    bitmap: PartialVirtualBitmap,
}

impl Tim {
    /// Creates a TIM element.
    pub fn new(
        dtim_count: u8,
        dtim_period: u8,
        broadcast_buffered: bool,
        unicast_bitmap: PartialVirtualBitmap,
    ) -> Self {
        Tim {
            dtim_count,
            dtim_period,
            broadcast_buffered,
            bitmap: unicast_bitmap,
        }
    }

    /// Beacons remaining until the next DTIM (0 at a DTIM beacon).
    pub fn dtim_count(&self) -> u8 {
        self.dtim_count
    }

    /// DTIM period in beacon intervals.
    pub fn dtim_period(&self) -> u8 {
        self.dtim_period
    }

    /// Whether this beacon is a DTIM beacon.
    pub fn is_dtim(&self) -> bool {
        self.dtim_count == 0
    }

    /// The standard one-bit broadcast/multicast indication: bit 0 of the
    /// Bitmap Control field. When set, *every* legacy client must stay
    /// awake for the broadcast delivery that follows the DTIM.
    pub fn broadcast_buffered(&self) -> bool {
        self.broadcast_buffered
    }

    /// Whether unicast traffic is buffered for `aid`.
    pub fn traffic_for(&self, aid: Aid) -> bool {
        self.bitmap.is_set(aid)
    }

    /// The unicast traffic bitmap.
    pub fn bitmap(&self) -> &PartialVirtualBitmap {
        &self.bitmap
    }

    /// Encodes the element body (everything after ID and length).
    pub fn encode_body(&self) -> Vec<u8> {
        let (_, len) = self.bitmap.trimmed_span();
        let mut body = Vec::with_capacity(3 + len);
        self.append_body_to(&mut body);
        body
    }

    /// Appends the element body to `out` — the allocation-free path for
    /// per-beacon encoders reusing one buffer across DTIM cycles.
    pub fn append_body_to(&self, out: &mut Vec<u8>) {
        out.push(self.dtim_count);
        out.push(self.dtim_period);
        let control_at = out.len();
        out.push(0);
        let offset = self.bitmap.append_trimmed_to(out);
        // Bitmap Control: bit 0 = broadcast indicator, bits 1-7 = N1/2.
        out[control_at] = (self.broadcast_buffered as u8) | (((offset / 2) as u8) << 1);
    }

    /// Decodes an element body.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::BadElementLength`] for bodies shorter than 4
    /// bytes and propagates bitmap reconstruction errors.
    pub fn decode_body(body: &[u8]) -> Result<Self, WifiError> {
        if body.len() < 4 {
            return Err(WifiError::BadElementLength {
                element_id: ELEMENT_ID_TIM,
                declared: body.len(),
            });
        }
        let control = body[2];
        let offset = ((control >> 1) as usize) * 2;
        let trimmed = TrimmedBitmap::from_parts(offset, body[3..].to_vec())?;
        Ok(Tim {
            dtim_count: body[0],
            dtim_period: body[1],
            broadcast_buffered: control & 1 != 0,
            bitmap: PartialVirtualBitmap::from_trimmed(&trimmed)?,
        })
    }
}

/// The HIDE Broadcast Traffic Indication Map element (ID 201, Fig. 4).
///
/// Carries one *broadcast flag* bit per associated client: set when the AP
/// has buffered broadcast frames whose UDP destination port the client
/// listens on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Btim {
    bitmap: PartialVirtualBitmap,
}

impl Btim {
    /// Creates a BTIM from per-client broadcast flags.
    pub fn new(flags: PartialVirtualBitmap) -> Self {
        Btim { bitmap: flags }
    }

    /// Whether client `aid` has useful broadcast frames buffered.
    pub fn is_set(&self, aid: Aid) -> bool {
        self.bitmap.is_set(aid)
    }

    /// `true` when no client has useful broadcast traffic.
    pub fn is_empty(&self) -> bool {
        self.bitmap.is_empty()
    }

    /// The underlying flag bitmap.
    pub fn bitmap(&self) -> &PartialVirtualBitmap {
        &self.bitmap
    }

    /// Encodes the element body: a 1-byte Offset (`N1`) followed by the
    /// trimmed partial virtual bitmap (Figs. 4 and 5).
    pub fn encode_body(&self) -> Vec<u8> {
        let (_, len) = self.bitmap.trimmed_span();
        let mut body = Vec::with_capacity(1 + len);
        self.append_body_to(&mut body);
        body
    }

    /// Appends the element body to `out` — the allocation-free path for
    /// per-beacon encoders reusing one buffer across DTIM cycles.
    pub fn append_body_to(&self, out: &mut Vec<u8>) {
        let offset_at = out.len();
        out.push(0);
        let offset = self.bitmap.append_trimmed_to(out);
        out[offset_at] = offset as u8;
    }

    /// Decodes an element body.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::BadElementLength`] for bodies shorter than 2
    /// bytes and propagates bitmap reconstruction errors (odd offset,
    /// overlong bitmap).
    pub fn decode_body(body: &[u8]) -> Result<Self, WifiError> {
        if body.len() < 2 {
            return Err(WifiError::BadElementLength {
                element_id: ELEMENT_ID_BTIM,
                declared: body.len(),
            });
        }
        let trimmed = TrimmedBitmap::from_parts(body[0] as usize, body[1..].to_vec())?;
        Ok(Btim {
            bitmap: PartialVirtualBitmap::from_trimmed(&trimmed)?,
        })
    }

    /// Encoded body length in bytes — the per-beacon overhead HIDE adds,
    /// the `L^b_i` of Eq. (16) (plus the 2-byte ID/length header counted
    /// by [`InformationElement::encoded_len`]). Computed from the
    /// trimmed span without materializing the encoding.
    pub fn body_len(&self) -> usize {
        1 + self.bitmap.trimmed_span().1
    }

    /// Records this element's on-air footprint into a metrics sink: one
    /// `BtimBeacons` tick, the full encoded length (body plus 2-byte
    /// ID/length header) as `BtimBytes`, the number of broadcast flags
    /// set as `BtimBitsSet`, and the per-beacon byte count into the
    /// `BtimBytesPerBeacon` distribution.
    pub fn observe<S: MetricsSink>(&self, sink: &mut S) {
        let bytes = (2 + self.body_len()) as u64;
        sink.incr(Counter::BtimBeacons);
        sink.add(Counter::BtimBytes, bytes);
        sink.add(Counter::BtimBitsSet, self.bitmap.count() as u64);
        sink.observe(Distribution::BtimBytesPerBeacon, bytes);
    }

    /// Emits a `BtimEmitted` trace event at simulation time `now` —
    /// the event-granular sibling of [`Btim::observe`]. A disabled sink
    /// skips even the payload computation.
    pub fn observe_traced<T: TraceSink>(&self, now: f64, trace: &mut T) {
        if trace.is_enabled() {
            trace.emit(
                now,
                TraceEventKind::BtimEmitted {
                    bytes: (2 + self.body_len()) as u32,
                    bits_set: self.bitmap.count() as u32,
                },
            );
        }
    }
}

/// The HIDE Open UDP Ports element (ID 200, Fig. 3): the list of UDP
/// ports open on `INADDR_ANY` that a client reports before suspending.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenUdpPorts {
    ports: Vec<u16>,
}

impl OpenUdpPorts {
    /// Maximum number of ports one element can carry (255-byte body,
    /// 2 bytes per port).
    pub const MAX_PORTS: usize = MAX_ELEMENT_BODY / 2;

    /// Creates an element from a port list.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::FieldOverflow`] when more than
    /// [`OpenUdpPorts::MAX_PORTS`] ports are supplied.
    pub fn new<I: IntoIterator<Item = u16>>(ports: I) -> Result<Self, WifiError> {
        let ports: Vec<u16> = ports.into_iter().collect();
        if ports.len() > Self::MAX_PORTS {
            return Err(WifiError::FieldOverflow {
                field: "open udp ports",
                value: ports.len() as u64,
            });
        }
        Ok(OpenUdpPorts { ports })
    }

    /// The reported ports.
    pub fn ports(&self) -> &[u16] {
        &self.ports
    }

    /// Number of reported ports (`N_i` in Eq. 19).
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// `true` when the client has no open UDP ports.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }

    /// Encodes the element body: each port as 2 big-endian bytes.
    pub fn encode_body(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(self.ports.len() * 2);
        for port in &self.ports {
            body.extend_from_slice(&port.to_be_bytes());
        }
        body
    }

    /// Decodes an element body.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::BadElementLength`] when the body length is
    /// odd.
    pub fn decode_body(body: &[u8]) -> Result<Self, WifiError> {
        if !body.len().is_multiple_of(2) {
            return Err(WifiError::BadElementLength {
                element_id: ELEMENT_ID_OPEN_UDP_PORTS,
                declared: body.len(),
            });
        }
        let ports = body
            .chunks_exact(2)
            .map(|c| u16::from_be_bytes([c[0], c[1]]))
            .collect();
        Ok(OpenUdpPorts { ports })
    }
}

/// An element this crate does not interpret, preserved verbatim.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RawElement {
    /// Element ID.
    pub id: u8,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

/// Any information element that can appear in the frames this crate
/// models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InformationElement {
    /// Standard TIM (ID 5).
    Tim(Tim),
    /// HIDE Open UDP Ports (ID 200).
    OpenUdpPorts(OpenUdpPorts),
    /// HIDE BTIM (ID 201).
    Btim(Btim),
    /// Anything else, passed through unmodified.
    Raw(RawElement),
}

impl InformationElement {
    /// The element ID.
    pub fn element_id(&self) -> u8 {
        match self {
            InformationElement::Tim(_) => ELEMENT_ID_TIM,
            InformationElement::OpenUdpPorts(_) => ELEMENT_ID_OPEN_UDP_PORTS,
            InformationElement::Btim(_) => ELEMENT_ID_BTIM,
            InformationElement::Raw(raw) => raw.id,
        }
    }

    /// Encodes the element including its 2-byte ID/length header.
    ///
    /// # Panics
    ///
    /// Panics if the body exceeds 255 bytes; all constructors enforce
    /// this invariant, so a panic indicates a bug in this crate.
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.element_id());
        let len_at = out.len();
        out.push(0);
        match self {
            InformationElement::Tim(tim) => tim.append_body_to(out),
            InformationElement::OpenUdpPorts(p) => {
                for port in &p.ports {
                    out.extend_from_slice(&port.to_be_bytes());
                }
            }
            InformationElement::Btim(btim) => btim.append_body_to(out),
            InformationElement::Raw(raw) => out.extend_from_slice(&raw.body),
        }
        let body_len = out.len() - len_at - 1;
        assert!(body_len <= MAX_ELEMENT_BODY, "element body too long");
        out[len_at] = body_len as u8;
    }

    /// Encoded length including the 2-byte header, computed without
    /// materializing the encoding.
    pub fn encoded_len(&self) -> usize {
        let body_len = match self {
            InformationElement::Tim(tim) => 3 + tim.bitmap.trimmed_span().1,
            InformationElement::OpenUdpPorts(p) => p.ports.len() * 2,
            InformationElement::Btim(btim) => btim.body_len(),
            InformationElement::Raw(raw) => raw.body.len(),
        };
        2 + body_len
    }

    /// Decodes one element from the front of `buf`, returning it and the
    /// number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::Truncated`] when the buffer ends inside the
    /// element and element-specific errors for malformed bodies.
    pub fn decode(buf: &[u8]) -> Result<(Self, usize), WifiError> {
        if buf.len() < 2 {
            return Err(WifiError::Truncated {
                what: "information element header",
                needed: 2,
                available: buf.len(),
            });
        }
        let id = buf[0];
        let len = buf[1] as usize;
        if buf.len() < 2 + len {
            return Err(WifiError::Truncated {
                what: "information element body",
                needed: 2 + len,
                available: buf.len(),
            });
        }
        let body = &buf[2..2 + len];
        let element = match id {
            ELEMENT_ID_TIM => InformationElement::Tim(Tim::decode_body(body)?),
            ELEMENT_ID_OPEN_UDP_PORTS => {
                InformationElement::OpenUdpPorts(OpenUdpPorts::decode_body(body)?)
            }
            ELEMENT_ID_BTIM => InformationElement::Btim(Btim::decode_body(body)?),
            _ => InformationElement::Raw(RawElement {
                id,
                body: body.to_vec(),
            }),
        };
        Ok((element, 2 + len))
    }

    /// Decodes a sequence of elements until the buffer is exhausted.
    ///
    /// # Errors
    ///
    /// Propagates any per-element decode error.
    pub fn decode_all(mut buf: &[u8]) -> Result<Vec<Self>, WifiError> {
        let mut elements = Vec::new();
        while !buf.is_empty() {
            let (element, consumed) = InformationElement::decode(buf)?;
            elements.push(element);
            buf = &buf[consumed..];
        }
        Ok(elements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn aid(v: u16) -> Aid {
        Aid::new(v).unwrap()
    }

    #[test]
    fn tim_round_trip() {
        let mut bitmap = PartialVirtualBitmap::new();
        bitmap.set(aid(12));
        bitmap.set(aid(600));
        let tim = Tim::new(2, 3, true, bitmap);
        let body = tim.encode_body();
        let back = Tim::decode_body(&body).unwrap();
        assert_eq!(back, tim);
        assert!(!back.is_dtim());
    }

    #[test]
    fn tim_broadcast_bit_is_bit0_of_control() {
        let tim = Tim::new(0, 1, true, PartialVirtualBitmap::new());
        let body = tim.encode_body();
        assert_eq!(body[2] & 1, 1);
        let tim = Tim::new(0, 1, false, PartialVirtualBitmap::new());
        assert_eq!(tim.encode_body()[2] & 1, 0);
    }

    #[test]
    fn tim_rejects_short_body() {
        assert!(Tim::decode_body(&[0, 1, 0]).is_err());
    }

    #[test]
    fn btim_round_trip() {
        let mut flags = PartialVirtualBitmap::new();
        for v in [1u16, 77, 1200] {
            flags.set(aid(v));
        }
        let btim = Btim::new(flags);
        let back = Btim::decode_body(&btim.encode_body()).unwrap();
        assert_eq!(back, btim);
        for v in [1u16, 77, 1200] {
            assert!(back.is_set(aid(v)));
        }
        assert!(!back.is_set(aid(2)));
    }

    #[test]
    fn btim_empty_is_two_bytes() {
        let btim = Btim::new(PartialVirtualBitmap::new());
        let body = btim.encode_body();
        assert_eq!(body, vec![0, 0]);
        assert_eq!(btim.body_len(), 2);
        assert!(Btim::decode_body(&body).unwrap().is_empty());
    }

    #[test]
    fn btim_compression_saves_bytes() {
        // A single flag at a high AID must not ship 251 bytes.
        let mut flags = PartialVirtualBitmap::new();
        flags.set(aid(2000));
        let btim = Btim::new(flags);
        assert!(btim.body_len() <= 3);
    }

    #[test]
    fn btim_observe_counts_on_air_footprint() {
        let mut flags = PartialVirtualBitmap::new();
        flags.set(aid(1));
        flags.set(aid(5));
        let btim = Btim::new(flags);
        let mut rec = hide_obs::Recorder::new();
        btim.observe(&mut rec);
        btim.observe(&mut rec);
        let bytes = (2 + btim.body_len()) as u64;
        assert_eq!(rec.counter(Counter::BtimBeacons), 2);
        assert_eq!(rec.counter(Counter::BtimBytes), 2 * bytes);
        assert_eq!(rec.counter(Counter::BtimBitsSet), 4);
        let h = rec.distribution(Distribution::BtimBytesPerBeacon);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), bytes);
        assert_eq!(h.max(), bytes);
    }

    #[test]
    fn btim_rejects_odd_offset() {
        assert!(Btim::decode_body(&[3, 0xff]).is_err());
    }

    #[test]
    fn open_udp_ports_round_trip() {
        let ports = OpenUdpPorts::new([53u16, 5353, 1900, 65535]).unwrap();
        let back = OpenUdpPorts::decode_body(&ports.encode_body()).unwrap();
        assert_eq!(back, ports);
        assert_eq!(back.len(), 4);
    }

    #[test]
    fn open_udp_ports_limit() {
        assert!(OpenUdpPorts::new(0..=(OpenUdpPorts::MAX_PORTS as u16)).is_err());
        assert!(OpenUdpPorts::new(0..(OpenUdpPorts::MAX_PORTS as u16)).is_ok());
    }

    #[test]
    fn open_udp_ports_rejects_odd_body() {
        assert!(OpenUdpPorts::decode_body(&[1, 2, 3]).is_err());
    }

    #[test]
    fn element_ids_match_paper() {
        assert_eq!(ELEMENT_ID_OPEN_UDP_PORTS, 200);
        assert_eq!(ELEMENT_ID_BTIM, 201);
    }

    #[test]
    fn element_encode_decode_round_trip() {
        let mut flags = PartialVirtualBitmap::new();
        flags.set(aid(9));
        let elements = vec![
            InformationElement::Tim(Tim::new(0, 1, false, PartialVirtualBitmap::new())),
            InformationElement::Btim(Btim::new(flags)),
            InformationElement::OpenUdpPorts(OpenUdpPorts::new([80u16, 443]).unwrap()),
            InformationElement::Raw(RawElement {
                id: 0,
                body: b"ssid".to_vec(),
            }),
        ];
        let mut buf = Vec::new();
        for e in &elements {
            e.encode(&mut buf);
        }
        let decoded = InformationElement::decode_all(&buf).unwrap();
        assert_eq!(decoded, elements);
    }

    #[test]
    fn encoded_len_matches_encode() {
        let mut flags = PartialVirtualBitmap::new();
        flags.set(aid(100));
        let elements = vec![
            InformationElement::Tim(Tim::new(1, 3, true, flags)),
            InformationElement::Btim(Btim::new(flags)),
            InformationElement::OpenUdpPorts(OpenUdpPorts::new([1u16, 2, 3]).unwrap()),
        ];
        for e in elements {
            let mut buf = Vec::new();
            e.encode(&mut buf);
            assert_eq!(buf.len(), e.encoded_len());
        }
    }

    #[test]
    fn decode_truncated_fails() {
        assert!(InformationElement::decode(&[5]).is_err());
        assert!(InformationElement::decode(&[5, 10, 1, 2]).is_err());
    }

    #[test]
    fn unknown_element_passes_through() {
        let buf = [42u8, 3, 1, 2, 3];
        let (e, used) = InformationElement::decode(&buf).unwrap();
        assert_eq!(used, 5);
        match e {
            InformationElement::Raw(raw) => {
                assert_eq!(raw.id, 42);
                assert_eq!(raw.body, vec![1, 2, 3]);
            }
            other => panic!("expected raw element, got {other:?}"),
        }
    }
}
