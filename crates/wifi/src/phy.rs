//! PHY-layer model: 802.11b data rates and airtime computation.
//!
//! The HIDE evaluation uses 802.11b parameters (Table II of the paper):
//! long-preamble PHY header of 192 µs, MAC header of 224 bits, and data
//! rates of 1, 2, 5.5 and 11 Mbit/s. Broadcast frames are commonly sent at
//! a basic rate (1 or 2 Mbit/s), and the paper's UDP Port Messages are sent
//! at the lowest rate of 1 Mbit/s.

use std::fmt;

/// Length of the PHY preamble + PLCP header in bits (long preamble).
pub const PHY_HEADER_BITS: u32 = 192;

/// Length of the 802.11 MAC data-frame header in bits (Table II).
pub const MAC_HEADER_BITS: u32 = 224;

/// Length of an ACK control frame body in bits (14 bytes).
pub const ACK_BITS: u32 = 112;

/// The PHY preamble and PLCP header are always transmitted at 1 Mbit/s,
/// so their airtime is fixed at 192 µs regardless of the data rate.
pub const PHY_HEADER_US: f64 = 192.0;

/// An 802.11b data rate.
///
/// # Example
///
/// ```
/// use hide_wifi::phy::DataRate;
///
/// let r = DataRate::R11M;
/// assert_eq!(r.bits_per_sec(), 11_000_000.0);
/// assert_eq!(DataRate::from_mbps(5.5), Some(DataRate::R5_5M));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataRate {
    /// 1 Mbit/s (DBPSK), the lowest basic rate.
    R1M,
    /// 2 Mbit/s (DQPSK).
    R2M,
    /// 5.5 Mbit/s (CCK).
    R5_5M,
    /// 11 Mbit/s (CCK), the 802.11b peak rate.
    R11M,
}

impl DataRate {
    /// All 802.11b rates in ascending order.
    pub const ALL: [DataRate; 4] = [
        DataRate::R1M,
        DataRate::R2M,
        DataRate::R5_5M,
        DataRate::R11M,
    ];

    /// Rate in bits per second.
    pub const fn bits_per_sec(self) -> f64 {
        match self {
            DataRate::R1M => 1_000_000.0,
            DataRate::R2M => 2_000_000.0,
            DataRate::R5_5M => 5_500_000.0,
            DataRate::R11M => 11_000_000.0,
        }
    }

    /// Rate in Mbit/s.
    pub const fn mbps(self) -> f64 {
        match self {
            DataRate::R1M => 1.0,
            DataRate::R2M => 2.0,
            DataRate::R5_5M => 5.5,
            DataRate::R11M => 11.0,
        }
    }

    /// Looks a rate up by its Mbit/s value.
    pub fn from_mbps(mbps: f64) -> Option<Self> {
        DataRate::ALL.into_iter().find(|r| r.mbps() == mbps)
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Mbit/s", self.mbps())
    }
}

/// Airtime model for a single frame transmission.
///
/// Computes the on-air duration of a frame: the PHY preamble/header at
/// 1 Mbit/s plus the MAC header and body at the frame's data rate.
///
/// # Example
///
/// ```
/// use hide_wifi::phy::{airtime_secs, DataRate};
///
/// // A 1000-byte body at 1 Mbit/s: 192 us preamble + (224 + 8000) bits / 1 Mbps.
/// let t = airtime_secs(1000, DataRate::R1M);
/// assert!((t - (192e-6 + 8224e-6)).abs() < 1e-12);
/// ```
pub fn airtime_secs(body_bytes: usize, rate: DataRate) -> f64 {
    let payload_bits = (MAC_HEADER_BITS as f64) + (body_bytes as f64) * 8.0;
    PHY_HEADER_US * 1e-6 + payload_bits / rate.bits_per_sec()
}

/// Airtime of a frame when the caller already accounts for the MAC header
/// in `total_bytes` (used by the energy model, which works with whole
/// frame lengths from the traces).
pub fn airtime_of_total_bytes(total_bytes: usize, rate: DataRate) -> f64 {
    PHY_HEADER_US * 1e-6 + (total_bytes as f64) * 8.0 / rate.bits_per_sec()
}

/// Airtime of an ACK control frame at the given rate.
pub fn ack_airtime_secs(rate: DataRate) -> f64 {
    PHY_HEADER_US * 1e-6 + (ACK_BITS as f64) / rate.bits_per_sec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_ascending() {
        let mut prev = 0.0;
        for r in DataRate::ALL {
            assert!(r.bits_per_sec() > prev);
            prev = r.bits_per_sec();
        }
    }

    #[test]
    fn from_mbps_round_trip() {
        for r in DataRate::ALL {
            assert_eq!(DataRate::from_mbps(r.mbps()), Some(r));
        }
        assert_eq!(DataRate::from_mbps(54.0), None);
    }

    #[test]
    fn airtime_monotone_in_size() {
        let small = airtime_secs(100, DataRate::R11M);
        let large = airtime_secs(1000, DataRate::R11M);
        assert!(large > small);
    }

    #[test]
    fn airtime_monotone_in_rate() {
        let slow = airtime_secs(500, DataRate::R1M);
        let fast = airtime_secs(500, DataRate::R11M);
        assert!(fast < slow);
    }

    #[test]
    fn airtime_includes_fixed_preamble() {
        // Even a zero-byte body pays the preamble plus MAC header.
        let t = airtime_secs(0, DataRate::R11M);
        assert!(t > PHY_HEADER_US * 1e-6);
    }

    #[test]
    fn ack_airtime_matches_manual() {
        let t = ack_airtime_secs(DataRate::R1M);
        assert!((t - (192e-6 + 112e-6)).abs() < 1e-12);
    }

    #[test]
    fn total_bytes_airtime_excludes_mac_header_addition() {
        // airtime_of_total_bytes treats the byte count as the full frame.
        let a = airtime_of_total_bytes(28, DataRate::R1M);
        let b = airtime_secs(0, DataRate::R1M);
        assert!((a - b).abs() < 1e-12, "28 bytes == MAC header of 224 bits");
    }

    #[test]
    fn display_rates() {
        assert_eq!(DataRate::R5_5M.to_string(), "5.5 Mbit/s");
        assert_eq!(DataRate::R11M.to_string(), "11 Mbit/s");
    }
}
