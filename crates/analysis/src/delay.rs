//! Network delay overhead (Section V.B, Eqs. 25–27, Figs. 11–12).
//!
//! For each UDP Port Message the AP refreshes the Client UDP Port
//! Table (`n_o` deletes + `n_o` inserts), and at each DTIM it looks up
//! one port per buffered broadcast frame. The resulting increase in
//! packet round-trip time is
//!
//! ```text
//! t1 = f · D · N · p · n_o · (τ_del + τ_ins)     (Eq. 25)
//! t2 = n_f · τ_lp                                 (Eq. 26)
//! d  = (t1 + t2) / D                              (Eq. 27)
//! ```
//!
//! The paper measured `τ_del`, `τ_ins`, `τ_lp` on a smartphone with a
//! 1 GHz ARM CPU and 512 MB RAM (comparable to commodity AP hardware).
//! We have no such device, so [`ArmCostModel`] provides deterministic
//! costs *calibrated so the reported overhead band is reproduced*:
//! ≈2.3% at `N = 50`, `1/f = 10 s`, `n_o = 50`; ≈0.05% at
//! `1/f = 600 s`; <1.6% at `n_o = 100`, `1/f = 30 s`. The measurement
//! *procedure* itself (seed the table with `N · 50% · 50` random pairs,
//! 10 repeats of 100 operations, take the mean) is implemented in
//! [`measure_host_costs`] and runnable against the real
//! [`hide_core::ap::ClientPortTable`] on the host.

use hide_core::ap::ClientPortTable;
use hide_wifi::mac::{Aid, MAX_AID};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Durations of the three hash-table operations, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArmCostModel {
    /// `τ_ins` — one port insertion.
    pub insert_secs: f64,
    /// `τ_del` — one port deletion.
    pub delete_secs: f64,
    /// `τ_lp` — one port lookup.
    pub lookup_secs: f64,
}

impl ArmCostModel {
    /// The calibrated 1 GHz ARM smartphone model (see module docs).
    /// Insert/delete dominate (they touch both index directions and,
    /// on the measured Android device, allocator churn); lookups are
    /// read-only and two orders of magnitude cheaper — which is why the
    /// paper finds `t1 ≫ t2`.
    pub const PAPER_ARM: ArmCostModel = ArmCostModel {
        insert_secs: 90e-6,
        delete_secs: 90e-6,
        lookup_secs: 1.5e-6,
    };

    /// `τ_del + τ_ins`, the per-port refresh cost of Eq. (25).
    pub fn refresh_pair_secs(&self) -> f64 {
        self.insert_secs + self.delete_secs
    }
}

impl Default for ArmCostModel {
    fn default() -> Self {
        ArmCostModel::PAPER_ARM
    }
}

/// Configuration of the delay analysis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayConfig {
    /// Baseline packet round-trip time `D` in seconds. The paper
    /// measured 79.5 ms pinging a YouTube server through a deployed AP
    /// (and notes the result barely depends on it).
    pub rtt_secs: f64,
    /// Fraction of clients with HIDE enabled (`p`, paper: 50%).
    pub hide_fraction: f64,
    /// Average open UDP ports per client (`n_o`).
    pub open_ports: u32,
    /// UDP Port Message interval `1/f` in seconds.
    pub sync_interval_secs: f64,
    /// Broadcast frames buffered per DTIM (`n_f`, paper: 10 — larger
    /// than any of the five traces exhibit).
    pub buffered_per_dtim: u32,
    /// Hash-table operation costs.
    pub costs: ArmCostModel,
}

impl Default for DelayConfig {
    /// The Section VI.B defaults: `D = 79.5 ms`, `p = 50%`,
    /// `n_o = 50`, `1/f = 10 s`, `n_f = 10`.
    fn default() -> Self {
        DelayConfig {
            rtt_secs: 0.0795,
            hide_fraction: 0.5,
            open_ports: 50,
            sync_interval_secs: 10.0,
            buffered_per_dtim: 10,
            costs: ArmCostModel::PAPER_ARM,
        }
    }
}

impl DelayConfig {
    /// Sets the baseline packet round-trip time `D`, seconds.
    #[must_use]
    pub fn with_rtt_secs(mut self, secs: f64) -> Self {
        self.rtt_secs = secs;
        self
    }

    /// Sets the fraction of clients with HIDE enabled (`p`).
    #[must_use]
    pub fn with_hide_fraction(mut self, fraction: f64) -> Self {
        self.hide_fraction = fraction;
        self
    }

    /// Sets the average open UDP ports per client (`n_o`).
    #[must_use]
    pub fn with_open_ports(mut self, ports: u32) -> Self {
        self.open_ports = ports;
        self
    }

    /// Sets the UDP Port Message interval `1/f`, seconds.
    #[must_use]
    pub fn with_sync_interval_secs(mut self, secs: f64) -> Self {
        self.sync_interval_secs = secs;
        self
    }

    /// Sets the broadcast frames buffered per DTIM (`n_f`).
    #[must_use]
    pub fn with_buffered_per_dtim(mut self, frames: u32) -> Self {
        self.buffered_per_dtim = frames;
        self
    }

    /// Sets the hash-table operation cost model.
    #[must_use]
    pub fn with_costs(mut self, costs: ArmCostModel) -> Self {
        self.costs = costs;
        self
    }
}

/// One point of Figs. 11/12.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayPoint {
    /// Total stations `N`.
    pub nodes: u32,
    /// `t1` in seconds (Eq. 25).
    pub t1_secs: f64,
    /// `t2` in seconds (Eq. 26).
    pub t2_secs: f64,
    /// Relative RTT increase `d` (Eq. 27).
    pub overhead: f64,
}

/// The Section V.B delay analysis.
#[derive(Debug, Clone, Copy)]
pub struct DelayAnalysis {
    config: DelayConfig,
}

impl DelayAnalysis {
    /// Creates the analysis.
    pub fn new(config: DelayConfig) -> Self {
        DelayAnalysis { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DelayConfig {
        &self.config
    }

    /// Computes the overhead for `nodes` stations.
    pub fn point(&self, nodes: u32) -> DelayPoint {
        let c = &self.config;
        let f = 1.0 / c.sync_interval_secs;
        let t1 = f
            * c.rtt_secs
            * nodes as f64
            * c.hide_fraction
            * c.open_ports as f64
            * c.costs.refresh_pair_secs();
        let t2 = c.buffered_per_dtim as f64 * c.costs.lookup_secs;
        DelayPoint {
            nodes,
            t1_secs: t1,
            t2_secs: t2,
            overhead: (t1 + t2) / c.rtt_secs,
        }
    }

    /// The Fig. 11 sweep: node counts × sync intervals
    /// {10, 30, 60, 150, 300, 600} s (with `n_o = 50`).
    pub fn figure_11(&self) -> Vec<(f64, Vec<DelayPoint>)> {
        [10.0, 30.0, 60.0, 150.0, 300.0, 600.0]
            .into_iter()
            .map(|interval| {
                let mut cfg = self.config;
                cfg.sync_interval_secs = interval;
                cfg.open_ports = 50;
                let sweep = DelayAnalysis::new(cfg);
                (
                    interval,
                    [5u32, 10, 20, 30, 40, 50]
                        .into_iter()
                        .map(|n| sweep.point(n))
                        .collect(),
                )
            })
            .collect()
    }

    /// The Fig. 12 sweep: node counts × open-port counts
    /// {10, 20, 50, 100} (with `1/f = 30 s`).
    pub fn figure_12(&self) -> Vec<(u32, Vec<DelayPoint>)> {
        [10u32, 20, 50, 100]
            .into_iter()
            .map(|ports| {
                let mut cfg = self.config;
                cfg.open_ports = ports;
                cfg.sync_interval_secs = 30.0;
                let sweep = DelayAnalysis::new(cfg);
                (
                    ports,
                    [5u32, 10, 20, 30, 40, 50]
                        .into_iter()
                        .map(|n| sweep.point(n))
                        .collect(),
                )
            })
            .collect()
    }
}

/// Host-measured hash-table operation costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostCosts {
    /// Mean insert duration, seconds.
    pub insert_secs: f64,
    /// Mean delete duration, seconds.
    pub delete_secs: f64,
    /// Mean lookup duration, seconds.
    pub lookup_secs: f64,
}

/// Runs the paper's measurement procedure against the real
/// [`ClientPortTable`] on this host: initialize the table with
/// `nodes · 50% · 50` random `(port, AID)` pairs, then time 10 repeated
/// runs of 100 delete, insert and lookup operations and take the mean.
///
/// Host numbers are far below the 1 GHz ARM calibration (modern
/// desktop CPU, native code); they demonstrate the procedure and give
/// a lower bound, while [`ArmCostModel::PAPER_ARM`] reproduces the
/// paper's absolute band.
pub fn measure_host_costs(nodes: u32, seed: u64) -> HostCosts {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut table = ClientPortTable::new();
    let pairs = (nodes as usize / 2) * 50;

    // Group random ports per client so update_client seeds the table.
    let clients = (nodes / 2).max(1);
    for c in 1..=clients {
        let aid = Aid::new(((c - 1) % MAX_AID as u32 + 1) as u16).expect("valid AID");
        let ports: Vec<u16> = (0..pairs / clients as usize)
            .map(|_| rng.gen_range(1024..u16::MAX))
            .collect();
        table.update_client(aid, &ports);
    }

    const REPEATS: usize = 10;
    const OPS: usize = 100;
    let mut insert_total = 0.0;
    let mut delete_total = 0.0;
    let mut lookup_total = 0.0;

    for _ in 0..REPEATS {
        let probe_aid = Aid::new(2000).expect("valid AID");
        let ports: Vec<u16> = (0..OPS).map(|_| rng.gen_range(1024..u16::MAX)).collect();

        let start = Instant::now();
        table.update_client(probe_aid, &ports);
        insert_total += start.elapsed().as_secs_f64();

        let start = Instant::now();
        table.remove_client(probe_aid);
        delete_total += start.elapsed().as_secs_f64();

        let start = Instant::now();
        for &p in &ports {
            std::hint::black_box(table.clients_for_port(p));
        }
        lookup_total += start.elapsed().as_secs_f64();
    }

    let n = (REPEATS * OPS) as f64;
    HostCosts {
        insert_secs: insert_total / n,
        delete_secs: delete_total / n,
        lookup_secs: lookup_total / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_match_field_assignment() {
        let built = DelayConfig::default()
            .with_rtt_secs(0.1)
            .with_hide_fraction(0.8)
            .with_open_ports(100)
            .with_sync_interval_secs(30.0)
            .with_buffered_per_dtim(4)
            .with_costs(ArmCostModel::PAPER_ARM);
        let expected = DelayConfig {
            rtt_secs: 0.1,
            hide_fraction: 0.8,
            open_ports: 100,
            sync_interval_secs: 30.0,
            buffered_per_dtim: 4,
            costs: ArmCostModel::PAPER_ARM,
        };
        assert_eq!(built, expected);
    }

    #[test]
    fn paper_point_10s_50_nodes_near_2_3_percent() {
        let d = DelayAnalysis::new(DelayConfig::default()).point(50);
        assert!(
            (0.020..0.026).contains(&d.overhead),
            "overhead {} outside the paper's ≈2.3% band",
            d.overhead
        );
    }

    #[test]
    fn paper_point_600s_near_0_05_percent() {
        let cfg = DelayConfig {
            sync_interval_secs: 600.0,
            ..DelayConfig::default()
        };
        let d = DelayAnalysis::new(cfg).point(50);
        assert!(
            (0.0002..0.001).contains(&d.overhead),
            "overhead {} outside the paper's ≈0.05% band",
            d.overhead
        );
    }

    #[test]
    fn paper_point_100_ports_under_1_6_percent() {
        let cfg = DelayConfig {
            open_ports: 100,
            sync_interval_secs: 30.0,
            ..DelayConfig::default()
        };
        let d = DelayAnalysis::new(cfg).point(50);
        assert!(d.overhead < 0.016, "overhead {} ≥ 1.6%", d.overhead);
        assert!(
            d.overhead > 0.008,
            "overhead {} implausibly small",
            d.overhead
        );
    }

    #[test]
    fn t1_dominates_t2() {
        // The paper observes t1 >> t2 throughout the analysis.
        let d = DelayAnalysis::new(DelayConfig::default()).point(50);
        assert!(d.t1_secs > 10.0 * d.t2_secs);
    }

    #[test]
    fn overhead_monotone_in_nodes_and_frequency() {
        let a = DelayAnalysis::new(DelayConfig::default());
        assert!(a.point(50).overhead > a.point(5).overhead);

        let slow_cfg = DelayConfig {
            sync_interval_secs: 300.0,
            ..DelayConfig::default()
        };
        let slow = DelayAnalysis::new(slow_cfg);
        assert!(a.point(30).overhead > slow.point(30).overhead);
    }

    #[test]
    fn overhead_nearly_independent_of_rtt() {
        // Eq. 25's t1 is linear in D, so d = t1/D + t2/D barely moves
        // with D when t1 dominates.
        let mut cfg = DelayConfig::default();
        let base = DelayAnalysis::new(cfg).point(50).overhead;
        cfg.rtt_secs = 0.200;
        let slower = DelayAnalysis::new(cfg).point(50).overhead;
        assert!((base - slower).abs() / base < 0.05);
    }

    #[test]
    fn figure_sweeps_have_expected_shape() {
        let a = DelayAnalysis::new(DelayConfig::default());
        let fig11 = a.figure_11();
        assert_eq!(fig11.len(), 6);
        for (_, pts) in &fig11 {
            assert_eq!(pts.len(), 6);
            assert!(pts.windows(2).all(|w| w[1].overhead >= w[0].overhead));
        }
        // Faster sync (smaller interval) → larger overhead at fixed N.
        assert!(fig11[0].1[5].overhead > fig11[5].1[5].overhead);

        let fig12 = a.figure_12();
        assert_eq!(fig12.len(), 4);
        assert!(fig12[3].1[5].overhead > fig12[0].1[5].overhead);
        // Every point stays under the 4% y-axis ceiling of the figures.
        for pts in fig11
            .iter()
            .map(|(_, p)| p)
            .chain(fig12.iter().map(|(_, p)| p))
        {
            assert!(pts.iter().all(|p| p.overhead < 0.04));
        }
    }

    #[test]
    fn host_measurement_runs_and_is_positive() {
        let costs = measure_host_costs(50, 7);
        assert!(costs.insert_secs > 0.0);
        assert!(costs.delete_secs > 0.0);
        assert!(costs.lookup_secs > 0.0);
        // A modern host is far faster than the 1 GHz ARM calibration.
        assert!(costs.insert_secs < ArmCostModel::PAPER_ARM.insert_secs);
    }
}
