//! Network capacity overhead (Section V.A, Eqs. 20–24, Fig. 10).
//!
//! The original network's capacity is `S1 = Φ · r` (Eq. 20) with `Φ`
//! from the Bianchi model. With HIDE, `n_u = N · p · f` UDP Port
//! Messages per second (Eq. 21) each consume `⌈L_m / L⌉` data-frame
//! transmission opportunities, so the capacity becomes
//! `S2 = (n − n_u · ⌈L_m/L⌉) · L` (Eq. 23) and the relative decrease is
//! `c = 1 − S2/S1` (Eq. 24).

use hide_wifi::dcf::{self, DcfConfig};
use hide_wifi::WifiError;

/// Network configuration for the overhead analysis: the 802.11b MAC/PHY
/// parameters of Table II plus HIDE's port-message settings.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// DCF parameters (Table II).
    pub dcf: DcfConfig,
    /// UDP Port Message sending interval `1/f` in seconds
    /// (Section VI.B uses 10 s).
    pub sync_interval_secs: f64,
    /// Ports per UDP Port Message (Section VI.B uses 50).
    pub ports_per_message: usize,
}

impl NetworkConfig {
    /// The exact configuration of the paper's capacity analysis:
    /// Table II plus 10-second sync interval and 50 ports per message.
    pub fn table_ii() -> Self {
        NetworkConfig {
            dcf: DcfConfig::table_ii(),
            sync_interval_secs: 10.0,
            ports_per_message: 50,
        }
    }

    /// UDP Port Message length in bits (Eq. 19): PHY header + MAC
    /// header + 2 fixed bytes + 2 bytes per port.
    pub fn port_message_bits(&self) -> f64 {
        self.dcf.phy_header_bits
            + self.dcf.mac_header_bits
            + (2.0 + 2.0 * self.ports_per_message as f64) * 8.0
    }

    /// `f`: UDP Port Messages per second per HIDE client.
    pub fn message_rate(&self) -> f64 {
        1.0 / self.sync_interval_secs
    }

    /// Sets the DCF parameters.
    #[must_use]
    pub fn with_dcf(mut self, dcf: DcfConfig) -> Self {
        self.dcf = dcf;
        self
    }

    /// Sets the UDP Port Message interval `1/f`, seconds.
    #[must_use]
    pub fn with_sync_interval_secs(mut self, secs: f64) -> Self {
        self.sync_interval_secs = secs;
        self
    }

    /// Sets the ports carried per UDP Port Message.
    #[must_use]
    pub fn with_ports_per_message(mut self, ports: usize) -> Self {
        self.ports_per_message = ports;
        self
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig::table_ii()
    }
}

/// One point of Fig. 10.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityPoint {
    /// Total stations in the network (`N`).
    pub nodes: u32,
    /// Fraction of stations with HIDE enabled (`p`).
    pub hide_fraction: f64,
    /// Original capacity `S1` in bit/s (Eq. 20).
    pub original_bps: f64,
    /// Capacity with HIDE `S2` in bit/s (Eq. 23).
    pub with_hide_bps: f64,
    /// Relative decrease `c = 1 − S2/S1` (Eq. 24).
    pub decrease: f64,
}

/// The Section V.A capacity analysis.
#[derive(Debug, Clone)]
pub struct CapacityAnalysis {
    config: NetworkConfig,
}

impl CapacityAnalysis {
    /// Creates the analysis for a network configuration.
    pub fn new(config: NetworkConfig) -> Self {
        CapacityAnalysis { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Computes one Fig. 10 point.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::DcfNoSolution`] for `nodes == 0` and
    /// [`WifiError::FieldOverflow`] when `hide_fraction` is outside
    /// `[0, 1]`.
    pub fn point(&self, nodes: u32, hide_fraction: f64) -> Result<CapacityPoint, WifiError> {
        if !(0.0..=1.0).contains(&hide_fraction) {
            return Err(WifiError::FieldOverflow {
                field: "hide fraction",
                value: (hide_fraction * 1000.0) as u64,
            });
        }
        let sol = dcf::solve(&self.config.dcf, nodes)?;
        let s1 = sol.capacity_bps(); // Eq. 20
        let l = self.config.dcf.payload_bits;
        let n_frames = s1 / l; // Eq. 22
        let nu = nodes as f64 * hide_fraction * self.config.message_rate(); // Eq. 21
        let slots_per_msg = (self.config.port_message_bits() / l).ceil();
        let s2 = ((n_frames - nu * slots_per_msg) * l).max(0.0); // Eq. 23
        Ok(CapacityPoint {
            nodes,
            hide_fraction,
            original_bps: s1,
            with_hide_bps: s2,
            decrease: 1.0 - s2 / s1, // Eq. 24
        })
    }

    /// Relative capacity decrease (Eq. 24).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CapacityAnalysis::point`].
    pub fn capacity_decrease(&self, nodes: u32, hide_fraction: f64) -> Result<f64, WifiError> {
        Ok(self.point(nodes, hide_fraction)?.decrease)
    }

    /// Like [`CapacityAnalysis::point`], but with `Φ` measured by the
    /// event-driven CSMA/CA simulator ([`hide_wifi::dcf_sim`]) instead
    /// of the analytical fixed point — an end-to-end check that the
    /// overhead conclusion does not hinge on Bianchi's approximations.
    ///
    /// # Errors
    ///
    /// Returns [`WifiError::FieldOverflow`] when `hide_fraction` is
    /// outside `[0, 1]` and [`WifiError::DcfNoSolution`] for
    /// `nodes == 0`.
    pub fn point_simulated(
        &self,
        nodes: u32,
        hide_fraction: f64,
        events: u64,
        seed: u64,
    ) -> Result<CapacityPoint, WifiError> {
        if !(0.0..=1.0).contains(&hide_fraction) {
            return Err(WifiError::FieldOverflow {
                field: "hide fraction",
                value: (hide_fraction * 1000.0) as u64,
            });
        }
        if nodes == 0 {
            return Err(WifiError::DcfNoSolution("station count is zero"));
        }
        let sim = hide_wifi::dcf_sim::simulate(
            &hide_wifi::dcf_sim::DcfSimConfig::new(self.config.dcf.clone(), nodes)
                .with_events(events)
                .with_seed(seed),
        );
        let s1 = sim.throughput * self.config.dcf.channel_rate_bps;
        let l = self.config.dcf.payload_bits;
        let n_frames = s1 / l;
        let nu = nodes as f64 * hide_fraction * self.config.message_rate();
        let slots_per_msg = (self.config.port_message_bits() / l).ceil();
        let s2 = ((n_frames - nu * slots_per_msg) * l).max(0.0);
        Ok(CapacityPoint {
            nodes,
            hide_fraction,
            original_bps: s1,
            with_hide_bps: s2,
            decrease: 1.0 - s2 / s1,
        })
    }

    /// The full Fig. 10 sweep: node counts {5, 10, 20, 30, 40, 50} ×
    /// HIDE fractions {5, 25, 50, 75}%.
    ///
    /// # Errors
    ///
    /// Propagates any per-point error (none occur for the standard
    /// sweep).
    pub fn figure_10(&self) -> Result<Vec<CapacityPoint>, WifiError> {
        let mut points = Vec::new();
        for &p in &[0.05, 0.25, 0.50, 0.75] {
            for &n in &[5u32, 10, 20, 30, 40, 50] {
                points.push(self.point(n, p)?);
            }
        }
        Ok(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analysis() -> CapacityAnalysis {
        CapacityAnalysis::new(NetworkConfig::table_ii())
    }

    #[test]
    fn builders_match_field_assignment() {
        let built = NetworkConfig::default()
            .with_dcf(DcfConfig::table_ii())
            .with_sync_interval_secs(600.0)
            .with_ports_per_message(100);
        let expected = NetworkConfig {
            dcf: DcfConfig::table_ii(),
            sync_interval_secs: 600.0,
            ports_per_message: 100,
        };
        assert_eq!(built, expected);
    }

    #[test]
    fn port_message_bits_match_eq19() {
        let cfg = NetworkConfig::table_ii();
        // 192 + 224 + (2 + 100) * 8 = 1232 bits with 50 ports.
        assert_eq!(cfg.port_message_bits(), 1232.0);
    }

    #[test]
    fn decrease_grows_with_nodes() {
        let a = analysis();
        let mut prev = 0.0;
        for n in [5u32, 10, 20, 30, 40, 50] {
            let c = a.capacity_decrease(n, 0.5).unwrap();
            assert!(c > prev, "n={n}: {c} <= {prev}");
            prev = c;
        }
    }

    #[test]
    fn decrease_grows_with_hide_fraction() {
        let a = analysis();
        let mut prev = -1.0;
        for p in [0.05, 0.25, 0.50, 0.75] {
            let c = a.capacity_decrease(50, p).unwrap();
            assert!(c > prev);
            prev = c;
        }
    }

    #[test]
    fn paper_observation_negligible_decrease() {
        // "With 50 nodes and 75% HIDE-enabled, the decrease is only
        // 0.13%" — our Φ differs slightly from theirs, but the decrease
        // must stay in the same negligible band (< 0.5%, the figure's
        // y-axis ceiling).
        let c = analysis().capacity_decrease(50, 0.75).unwrap();
        assert!(c > 0.0005, "decrease implausibly small: {c}");
        assert!(c < 0.005, "decrease too large: {c}");
    }

    #[test]
    fn zero_hide_fraction_means_zero_decrease() {
        let c = analysis().capacity_decrease(50, 0.0).unwrap();
        assert_eq!(c, 0.0);
    }

    #[test]
    fn original_capacity_declines_gently() {
        // Paper: "the original network capacity drops only slightly
        // from 5 to 50 nodes".
        let a = analysis();
        let s5 = a.point(5, 0.5).unwrap().original_bps;
        let s50 = a.point(50, 0.5).unwrap().original_bps;
        assert!(s50 < s5);
        assert!(s50 > 0.6 * s5);
    }

    #[test]
    fn figure_10_sweep_shape() {
        let points = analysis().figure_10().unwrap();
        assert_eq!(points.len(), 24);
        assert!(points
            .iter()
            .all(|pt| pt.decrease >= 0.0 && pt.decrease < 0.005));
    }

    #[test]
    fn invalid_inputs_rejected() {
        let a = analysis();
        assert!(a.point(0, 0.5).is_err());
        assert!(a.point(10, 1.5).is_err());
        assert!(a.point(10, -0.1).is_err());
    }

    #[test]
    fn simulated_capacity_agrees_with_analytic() {
        let a = analysis();
        let analytic = a.point(20, 0.75).unwrap();
        let simulated = a.point_simulated(20, 0.75, 40_000, 7).unwrap();
        let err = (simulated.original_bps - analytic.original_bps).abs() / analytic.original_bps;
        assert!(err < 0.07, "S1 off by {:.1}%", err * 100.0);
        // The headline conclusion survives the mechanism-level check.
        assert!(simulated.decrease < 0.005);
        assert!(simulated.decrease > 0.0);
    }

    #[test]
    fn simulated_point_validates_inputs() {
        let a = analysis();
        assert!(a.point_simulated(0, 0.5, 1000, 1).is_err());
        assert!(a.point_simulated(10, 1.5, 1000, 1).is_err());
    }

    #[test]
    fn longer_sync_interval_reduces_overhead() {
        let mut cfg = NetworkConfig::table_ii();
        cfg.sync_interval_secs = 600.0;
        let slow = CapacityAnalysis::new(cfg)
            .capacity_decrease(50, 0.75)
            .unwrap();
        let fast = analysis().capacity_decrease(50, 0.75).unwrap();
        assert!(slow < fast);
    }
}
