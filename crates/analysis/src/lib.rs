//! Network capacity and delay overhead analysis (Section V of the HIDE
//! paper).
//!
//! HIDE touches the network in two ways. First, UDP Port Messages are
//! extra management traffic: they consume transmission opportunities and
//! shrink the maximum achievable throughput ([`capacity`], Eqs. 20–24,
//! built on the Bianchi DCF model in [`hide_wifi::dcf`]). Second, the AP
//! spends CPU time maintaining the Client UDP Port Table and looking up
//! ports at every DTIM, which lengthens packet round-trip times
//! ([`delay`], Eqs. 25–27).
//!
//! The paper measured hash-table operation times on a 1 GHz ARM
//! smartphone standing in for AP hardware. Without that hardware, this
//! crate ships a calibrated [`delay::ArmCostModel`] plus the same
//! measurement *procedure* runnable against the real
//! [`hide_core::ap::ClientPortTable`] on the host
//! ([`delay::measure_host_costs`]).
//!
//! # Example
//!
//! ```
//! use hide_analysis::capacity::{CapacityAnalysis, NetworkConfig};
//!
//! let analysis = CapacityAnalysis::new(NetworkConfig::default());
//! let drop = analysis.capacity_decrease(50, 0.75)?;
//! assert!(drop < 0.005, "capacity loss stays under 0.5%: {drop}");
//! # Ok::<(), hide_wifi::WifiError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod delay;
