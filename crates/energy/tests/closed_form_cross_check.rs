//! Cross-validation: the event-driven power-state machine must agree
//! with the literal closed-form equations (Eqs. 3–5, 12–14) whenever
//! every frame holds the uniform wakelock `τ` — the only case the paper
//! writes in closed form.

use hide_energy::closed_form;
use hide_energy::machine;
use hide_energy::profile::{DeviceProfile, GALAXY_S4, NEXUS_ONE};
use hide_energy::timeline::{Timeline, TimelineFrame};
use proptest::collection::vec;
use proptest::prelude::*;

/// Builds a timeline whose frames complete at exactly `arrivals`.
fn timeline_from_arrivals(arrivals: &[f64], duration: f64, tau: f64) -> Timeline {
    let frames = arrivals
        .iter()
        .map(|&a| TimelineFrame {
            start: a,
            airtime: 0.0,
            more_data: false,
            hold: tau,
        })
        .collect();
    Timeline::new(duration, 0.1024, frames).expect("valid timeline")
}

fn sorted_arrivals() -> impl Strategy<Value = Vec<f64>> {
    // Gaps from sub-millisecond (wakelock renewals) through multi-second
    // (full suspend cycles), covering every state-machine branch.
    vec(0.0005f64..8.0, 1..60).prop_map(|gaps| {
        let mut t = 1.0;
        gaps.iter()
            .map(|g| {
                t += g;
                t
            })
            .collect()
    })
}

fn check_agreement(profile: &DeviceProfile, arrivals: &[f64]) {
    // Duration far past the last wakelock so end-clipping can't differ.
    let duration = arrivals.last().unwrap() + 100.0;
    let timeline = timeline_from_arrivals(arrivals, duration, profile.wakelock_secs);

    let m = machine::run(profile, &timeline);
    let seq = closed_form::compute(profile, arrivals);

    let ewl_cf = seq.wakelock_energy(profile);
    let est_cf = seq.state_transfer_energy(profile);

    assert!(
        (m.wakelock_energy - ewl_cf).abs() < 1e-6,
        "Ewl mismatch: machine {} vs closed form {} (arrivals {arrivals:?})",
        m.wakelock_energy,
        ewl_cf
    );
    assert!(
        (m.state_transfer_energy - est_cf).abs() < 1e-6,
        "Est mismatch: machine {} vs closed form {} (arrivals {arrivals:?})",
        m.state_transfer_energy,
        est_cf
    );
    assert_eq!(
        m.resume_count,
        seq.suspend_arrivals(),
        "resume count mismatch (arrivals {arrivals:?})"
    );
}

proptest! {
    #[test]
    fn machine_matches_closed_form_nexus(arrivals in sorted_arrivals()) {
        check_agreement(&NEXUS_ONE, &arrivals);
    }

    #[test]
    fn machine_matches_closed_form_s4(arrivals in sorted_arrivals()) {
        check_agreement(&GALAXY_S4, &arrivals);
    }

    #[test]
    fn suspend_plus_active_time_bounded(arrivals in sorted_arrivals()) {
        let duration = arrivals.last().unwrap() + 100.0;
        let timeline = timeline_from_arrivals(&arrivals, duration, 1.0);
        let m = machine::run(&NEXUS_ONE, &timeline);
        prop_assert!(m.suspend_time >= 0.0);
        prop_assert!(m.wakelock_time >= 0.0);
        prop_assert!(m.suspend_time + m.wakelock_time <= duration + 1e-9);
    }

    #[test]
    fn state_energy_monotone_in_frame_count(arrivals in sorted_arrivals()) {
        // Dropping frames from the tail can never increase Est + Ewl.
        if arrivals.len() < 2 {
            return Ok(());
        }
        let duration = arrivals.last().unwrap() + 100.0;
        let full = timeline_from_arrivals(&arrivals, duration, 1.0);
        let half = timeline_from_arrivals(&arrivals[..arrivals.len() / 2], duration, 1.0);
        let mf = machine::run(&NEXUS_ONE, &full);
        let mh = machine::run(&NEXUS_ONE, &half);
        let ef = mf.state_transfer_energy + mf.wakelock_energy;
        let eh = mh.state_transfer_energy + mh.wakelock_energy;
        prop_assert!(eh <= ef + 1e-9, "half {eh} > full {ef}");
    }
}

#[test]
fn dense_burst_agreement() {
    // A 100-frame burst at 50 ms spacing: continuous renewal.
    let arrivals: Vec<f64> = (0..100).map(|i| 1.0 + 0.05 * i as f64).collect();
    check_agreement(&NEXUS_ONE, &arrivals);
    check_agreement(&GALAXY_S4, &arrivals);
}

#[test]
fn abort_window_agreement() {
    // Frames spaced to land inside the suspend operation repeatedly.
    for profile in [NEXUS_ONE, GALAXY_S4] {
        let gap = profile.wakelock_secs + profile.suspend_secs * 0.5;
        let arrivals: Vec<f64> = (0..40).map(|i| 1.0 + gap * i as f64).collect();
        check_agreement(&profile, &arrivals);
    }
}

#[test]
fn exact_boundary_agreement() {
    // Frames exactly at the suspend-complete boundary: s(i) = 0 per the
    // paper's `>=` in Eq. (5).
    let p = NEXUS_ONE;
    let cycle = p.resume_secs + p.wakelock_secs + p.suspend_secs;
    let arrivals: Vec<f64> = (0..10)
        .scan(1.0, |t, _| {
            let v = *t;
            *t += cycle;
            Some(v)
        })
        .collect();
    check_agreement(&p, &arrivals);
}
