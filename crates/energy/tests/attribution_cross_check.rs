//! Differential cross-check: wake prices charged by the attribution
//! ledger must equal the energy the Section-IV state machine reports
//! for the same wakeups.
//!
//! The anchor is the machine's isolated-frame semantics: a frame that
//! arrives with the device fully suspended, and whose wakelock expires
//! before the next frame, costs exactly one wake cycle plus the
//! wakelock tail — `E_rm + E_sp + τ·P_sa` — which is precisely
//! [`WakePricing::wake_nj`]. Summing the ledger over N such wakes must
//! therefore reproduce `Ewl + Est` from `machine::run` to within the
//! pinned per-charge rounding bound.

use hide_energy::attribution::{AttributionLedger, WakePricing};
use hide_energy::machine;
use hide_energy::profile::{DeviceProfile, ALL_PROFILES};
use hide_energy::timeline::{Timeline, TimelineFrame};
use hide_obs::provenance::ProvenanceLedger;

/// Pinned epsilon: each nanojoule price is rounded half-up once, so a
/// ledger of `n` charges differs from the f64 model by at most
/// `n × 0.5 nJ`. We allow that bound plus f64 summation slack.
const EPS_NJ_PER_CHARGE: f64 = 0.5;

/// N frames, each arriving long after the previous wakelock expired
/// and the suspend completed, so every frame is an isolated wake.
fn isolated_frames(profile: &DeviceProfile, n: usize) -> Timeline {
    let gap = 10.0 + profile.wakelock_secs + profile.resume_secs + profile.suspend_secs;
    let frames: Vec<TimelineFrame> = (0..n)
        .map(|i| TimelineFrame {
            start: 5.0 + gap * i as f64,
            airtime: 0.002,
            more_data: false,
            hold: profile.wakelock_secs,
        })
        .collect();
    let duration = 5.0 + gap * n as f64 + 30.0;
    Timeline::new(duration, 0.1024, frames).expect("valid timeline")
}

#[test]
fn ledger_reproduces_machine_energy_for_isolated_wakes() {
    for profile in &ALL_PROFILES {
        for n in [1usize, 7, 100] {
            let timeline = isolated_frames(profile, n);
            let m = machine::run(profile, &timeline);
            assert_eq!(m.resume_count, n as u64, "{}: not isolated", profile.name);
            let machine_j = m.wakelock_energy + m.state_transfer_energy;

            // Price the same wakeups through the provenance join: one
            // client lane with n proper wakes.
            let mut counts = ProvenanceLedger::new();
            counts.entry((0, 1)).proper = n as u64;
            let ledger = AttributionLedger::price(&counts, profile);
            let ledger_j = ledger.spent_nj() as f64 / 1e9;

            let eps_j = (n as f64 * EPS_NJ_PER_CHARGE + 1.0) * 1e-9;
            assert!(
                (ledger_j - machine_j).abs() <= eps_j,
                "{} n={n}: ledger {ledger_j} J vs machine {machine_j} J",
                profile.name
            );
        }
    }
}

#[test]
fn wake_price_equals_single_isolated_frame_cost() {
    for profile in &ALL_PROFILES {
        let timeline = isolated_frames(profile, 1);
        let m = machine::run(profile, &timeline);
        let pricing = WakePricing::from_profile(profile);
        let machine_nj = (m.wakelock_energy + m.state_transfer_energy) * 1e9;
        assert!(
            (pricing.wake_nj as f64 - machine_nj).abs() <= EPS_NJ_PER_CHARGE + 1e-3,
            "{}: wake_nj {} vs machine {machine_nj} nJ",
            profile.name,
            pricing.wake_nj
        );
    }
}

#[test]
fn forgone_price_is_wake_minus_suspend_floor() {
    for profile in &ALL_PROFILES {
        let pricing = WakePricing::from_profile(profile);
        let window = profile.resume_secs + profile.wakelock_secs + profile.suspend_secs;
        let expected =
            (pricing.wake_nj as f64 - window * profile.suspend_power * 1e9).round() as u64;
        // Two independent roundings may disagree by 1 nJ at most.
        assert!(
            pricing.forgone_nj.abs_diff(expected) <= 1,
            "{}: forgone {} vs expected {expected}",
            profile.name,
            pricing.forgone_nj
        );
        assert!(pricing.forgone_nj < pricing.wake_nj);
    }
}
