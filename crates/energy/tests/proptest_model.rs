//! Property-based tests of energy-model invariants beyond the
//! closed-form cross-check.

use hide_energy::machine;
use hide_energy::profile::{GALAXY_S4, NEXUS_ONE};
use hide_energy::timeline::{Overhead, Timeline, TimelineFrame};
use proptest::collection::vec;
use proptest::prelude::*;

fn frames_from_gaps(gaps: &[f64], hold: f64) -> Vec<TimelineFrame> {
    let mut t = 1.0;
    gaps.iter()
        .map(|g| {
            t += g;
            TimelineFrame {
                start: t,
                airtime: 0.001,
                more_data: false,
                hold,
            }
        })
        .collect()
}

fn gaps() -> impl Strategy<Value = Vec<f64>> {
    vec(0.001f64..6.0, 1..50)
}

proptest! {
    /// Energy components are never negative and never NaN.
    #[test]
    fn energy_components_nonnegative(gaps in gaps(), s4 in any::<bool>()) {
        let profile = if s4 { GALAXY_S4 } else { NEXUS_ONE };
        let frames = frames_from_gaps(&gaps, profile.wakelock_secs);
        let duration = frames.last().unwrap().start + 50.0;
        let timeline = Timeline::new(duration, 0.1024, frames).unwrap();
        let report = hide_energy::evaluate(&profile, &timeline, &Overhead::NONE);
        let b = report.breakdown;
        for (name, v) in [
            ("beacon", b.beacon),
            ("frames", b.frames),
            ("wakelock", b.wakelock),
            ("state_transfer", b.state_transfer),
            ("overhead", b.overhead),
        ] {
            prop_assert!(v.is_finite() && v >= 0.0, "{name} = {v}");
        }
        prop_assert!(report.suspend_fraction() >= 0.0);
        prop_assert!(report.suspend_fraction() <= 1.0);
    }

    /// Removing a subset of frames is *almost* monotone in the
    /// state-machine energy (Ewl + Est). It is not pointwise monotone:
    /// dropping a frame whose wakelock renewal cheaply bridged a gap
    /// can force the next frame into a fresh suspend/resume cycle —
    /// the very effect that makes the "client-side" baseline expensive.
    /// Each such boundary costs at most one wake cycle plus one full
    /// wakelock (plus the resume-shifted hold), so the subset's energy
    /// is bounded by the full run's plus that per-extra-resume premium.
    /// The subset always suspends at least as long.
    #[test]
    fn machine_energy_bounded_under_subset(
        gaps in gaps(),
        mask_seed in any::<u64>(),
    ) {
        let profile = NEXUS_ONE;
        let all = frames_from_gaps(&gaps, profile.wakelock_secs);
        let duration = all.last().unwrap().start + 50.0;

        // Deterministic pseudo-random subset from the seed.
        let mut keep = Vec::new();
        let mut state = mask_seed | 1;
        for f in &all {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if state & 0b11 != 0 {
                keep.push(*f);
            }
        }

        let full = machine::run(
            &profile,
            &Timeline::new(duration, 0.1024, all).unwrap(),
        );
        let sub = machine::run(
            &profile,
            &Timeline::new(duration, 0.1024, keep).unwrap(),
        );
        let e_full = full.wakelock_energy + full.state_transfer_energy;
        let e_sub = sub.wakelock_energy + sub.state_transfer_energy;
        // New suspend/resume cycles AND new aborted-suspend events both
        // arise when a removed frame stops bridging a gap.
        let extra_boundaries = sub.resume_count.saturating_sub(full.resume_count) as f64
            + sub
                .aborted_suspends
                .saturating_sub(full.aborted_suspends) as f64;
        let per_boundary = profile.wake_cycle_energy()
            + profile.active_idle_power * (profile.wakelock_secs + profile.resume_secs);
        prop_assert!(
            e_sub <= e_full + extra_boundaries * per_boundary + 1e-9,
            "subset energy {e_sub} exceeds full {e_full} by more than \
             {extra_boundaries} boundary premiums"
        );
        prop_assert!(sub.suspend_time + 1e-9 >= full.suspend_time);
    }

    /// Wakelock time is bounded by (frame count) × τ and by the trace
    /// duration.
    #[test]
    fn wakelock_time_bounds(gaps in gaps()) {
        let profile = NEXUS_ONE;
        let frames = frames_from_gaps(&gaps, profile.wakelock_secs);
        let n = frames.len() as f64;
        let duration = frames.last().unwrap().start + 50.0;
        let m = machine::run(&profile, &Timeline::new(duration, 0.1024, frames).unwrap());
        prop_assert!(m.wakelock_time <= n * profile.wakelock_secs + 1e-9);
        prop_assert!(m.wakelock_time <= duration);
    }

    /// Resume count never exceeds the frame count, and each resume
    /// implies at least a wake cycle of energy.
    #[test]
    fn resume_count_consistency(gaps in gaps()) {
        let profile = GALAXY_S4;
        let frames = frames_from_gaps(&gaps, profile.wakelock_secs);
        let n = frames.len() as u64;
        let duration = frames.last().unwrap().start + 50.0;
        let m = machine::run(&profile, &Timeline::new(duration, 0.1024, frames).unwrap());
        prop_assert!(m.resume_count >= 1);
        prop_assert!(m.resume_count <= n);
        prop_assert!(
            m.state_transfer_energy + 1e-12
                >= m.resume_count as f64 * profile.wake_cycle_energy()
        );
    }

    /// Scaling the device's suspend/resume energies scales Est linearly.
    #[test]
    fn state_transfer_scales_with_cycle_cost(gaps in gaps(), k in 1.5f64..4.0) {
        let base = NEXUS_ONE;
        let scaled = base
            .derive()
            .resume_energy(base.resume_energy * k)
            .suspend_energy(base.suspend_energy * k)
            .build();
        let frames = frames_from_gaps(&gaps, base.wakelock_secs);
        let duration = frames.last().unwrap().start + 50.0;
        let timeline = Timeline::new(duration, 0.1024, frames).unwrap();
        let a = machine::run(&base, &timeline).state_transfer_energy;
        let b = machine::run(&scaled, &timeline).state_transfer_energy;
        prop_assert!((b - a * k).abs() < 1e-9, "expected {} got {b}", a * k);
    }
}
