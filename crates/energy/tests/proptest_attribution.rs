//! Property-based tests of the attribution ledger's algebra.
//!
//! The fleet merge relies on ledger addition being exactly associative
//! and commutative (integer nanojoules, no floats), and the pricing
//! join must be non-negative everywhere and monotone in the wake
//! counts it prices.

use hide_energy::attribution::AttributionLedger;
use hide_energy::profile::{GALAXY_S4, NEXUS_ONE};
use hide_obs::provenance::ProvenanceLedger;
use proptest::collection::vec;
use proptest::prelude::*;

/// A random ledger: up to 12 rows over a small key space (so merges
/// actually collide), with bounded per-field charges.
fn ledgers() -> impl Strategy<Value = AttributionLedger> {
    vec(
        (
            (0u32..4, 1u16..6),
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
            0u64..1 << 40,
        ),
        0..12,
    )
    .prop_map(|rows| {
        let mut out = AttributionLedger::new();
        for (key, proper, beacon, rx, missed) in rows {
            let e = out.entry(key);
            e.proper_nj += proper;
            e.beacon_nj += beacon;
            e.burst_rx_nj += rx;
            e.missed_forgone_nj.refresh_lost += missed;
        }
        out
    })
}

/// A random per-client wake-count ledger.
fn wake_counts() -> impl Strategy<Value = ProvenanceLedger> {
    vec(((0u32..4, 1u16..6), 0u64..500, 0u64..500, 0u64..500), 0..12).prop_map(|rows| {
        let mut out = ProvenanceLedger::new();
        for (key, proper, spurious, missed) in rows {
            let w = out.entry(key);
            w.proper += proper;
            w.spurious.port_churn += spurious;
            w.missed.refresh_lost += missed;
        }
        out
    })
}

proptest! {
    /// Merge is exactly associative and commutative — the property the
    /// deterministic shard fan-in rests on. Integer addition makes this
    /// bit-exact, not approximate.
    #[test]
    fn merge_is_associative_and_commutative(
        a in ledgers(), b in ledgers(), c in ledgers()
    ) {
        // (a + b) + c
        let mut left = a.clone();
        left.merge_from(&b);
        left.merge_from(&c);
        // a + (b + c)
        let mut bc = b.clone();
        bc.merge_from(&c);
        let mut right = a.clone();
        right.merge_from(&bc);
        prop_assert_eq!(&left, &right);
        // c + b + a
        let mut rev = c.clone();
        rev.merge_from(&b);
        rev.merge_from(&a);
        prop_assert_eq!(&left, &rev);
        // Identity, and exports agree when the ledgers do.
        let mut with_empty = left.clone();
        with_empty.merge_from(&AttributionLedger::new());
        prop_assert_eq!(with_empty.to_csv(), left.to_csv());
        prop_assert_eq!(with_empty.to_jsonl(), left.to_jsonl());
        prop_assert_eq!(
            with_empty.to_metrics_section(),
            left.to_metrics_section()
        );
    }

    /// Merging can only add energy: totals are superadditive-exact
    /// (sum of parts), and spent/missed columns never go negative
    /// (they are u64 built from non-negative prices).
    #[test]
    fn merge_totals_add_exactly(a in ledgers(), b in ledgers()) {
        let mut merged = a.clone();
        merged.merge_from(&b);
        prop_assert_eq!(merged.spent_nj(), a.spent_nj() + b.spent_nj());
        let (ta, tb, tm) = (a.totals(), b.totals(), merged.totals());
        prop_assert_eq!(
            tm.missed_forgone_nj.total(),
            ta.missed_forgone_nj.total() + tb.missed_forgone_nj.total()
        );
        prop_assert!(merged.len() <= a.len() + b.len());
        prop_assert!(merged.len() >= a.len().max(b.len()));
    }

    /// Priced energy is monotone in the spurious-wake count: adding
    /// spurious wakes to any client lane strictly increases total
    /// spent joules, and never touches the missed column.
    #[test]
    fn spent_is_monotone_in_spurious_wakes(
        counts in wake_counts(),
        key in (0u32..4, 1u16..6),
        extra in 1u64..100,
        s4 in any::<bool>(),
    ) {
        let profile = if s4 { GALAXY_S4 } else { NEXUS_ONE };
        let base = AttributionLedger::price(&counts, &profile);
        let mut more = counts.clone();
        more.entry(key).spurious.port_churn += extra;
        let bumped = AttributionLedger::price(&more, &profile);
        prop_assert!(bumped.spent_nj() > base.spent_nj());
        prop_assert_eq!(
            bumped.spent_nj() - base.spent_nj(),
            extra * hide_energy::WakePricing::from_profile(&profile).wake_nj
        );
        prop_assert_eq!(
            bumped.totals().missed_forgone_nj.total(),
            base.totals().missed_forgone_nj.total()
        );
    }

    /// Pricing never produces negative or absent energy: every wake
    /// count maps to a finite non-negative charge, and zero wakes of a
    /// class map to exactly zero energy in that column.
    #[test]
    fn pricing_is_nonnegative_and_zero_preserving(counts in wake_counts(), s4 in any::<bool>()) {
        let profile = if s4 { GALAXY_S4 } else { NEXUS_ONE };
        let priced = AttributionLedger::price(&counts, &profile);
        for (key, e) in priced.rows() {
            let w = counts.get(*key).expect("priced row must come from a counted row");
            // u64 charges are non-negative by construction; check the
            // zero-preservation direction explicitly.
            if w.spurious.total() == 0 {
                prop_assert_eq!(e.spurious_nj.total(), 0);
            }
            if w.missed.total() == 0 {
                prop_assert_eq!(e.missed_forgone_nj.total(), 0);
            }
            if w.total() == 0 {
                prop_assert_eq!(e.spent_nj(), 0);
            }
        }
    }
}
