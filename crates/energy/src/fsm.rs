//! PowerTutor-style multi-radio power state machine.
//!
//! PowerTutor models each radio as a small FSM: the WiFi interface sits
//! in a **low-power** state (~20 mW) until the packet rate crosses a
//! promotion threshold, runs in a **high-power** state (~710 mW base)
//! while busy, and demotes back after an inactivity timer. This module
//! expresses a [`DeviceProfile`]'s radio
//! behavior in that shape: a [`TransitionTable`] of named
//! [`RadioState`]s with per-state powers and priced transitions,
//! deterministic and integer-nanojoule-priced so ledger accounting
//! stays merge-exact.
//!
//! Consumers:
//!
//! * [`machine::run`](crate::machine::run) walks a reception timeline
//!   against the table (via
//!   [`machine::run_with_table`](crate::machine::run_with_table))
//!   instead of reading flat per-state powers off the profile;
//! * [`WakePricing::from_table`](crate::attribution::WakePricing::from_table)
//!   derives the fleet engine's pre-rounded wake prices from the same
//!   table.
//!
//! Both paths perform the *exact* floating-point operations the
//! profile-based paths performed — the table stores the profile's
//! constants verbatim — so adopting the FSM changes no golden byte.

use crate::attribution::joules_to_nj;
use crate::profile::DeviceProfile;

/// PowerTutor's WiFi low-power draw relative to its high-power base
/// (20 mW / 710 mW): used to derive a device's low-power-listening
/// draw from its measured idle-listening power.
pub const WIFI_LPM_POWER_RATIO: f64 = 0.020 / 0.710;

/// PowerTutor's default WiFi packet-rate promotion threshold:
/// above this many packets per second the interface is promoted from
/// low-power to high-power operation.
pub const DEFAULT_PROMOTION_PKTS_PER_SEC: f64 = 15.0;

/// Default high-power → low-power inactivity timer, seconds.
pub const DEFAULT_INACTIVITY_TIMER_SECS: f64 = 1.0;

/// One state of the multi-radio machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum RadioState {
    /// Whole system suspended (`P_ss`).
    Suspended,
    /// System resume operation in flight (`E_rm` over `T_rm`).
    Resuming,
    /// System awake and idle under a wakelock (`P_sa`).
    ActiveIdle,
    /// System suspend operation in flight (`E_sp` over `T_sp`).
    Suspending,
    /// WiFi interface in PowerTutor's low-power listening state.
    WifiLowPower,
    /// WiFi interface in PowerTutor's high-power (promoted) state
    /// (`P_idle` base).
    WifiHighPower,
    /// WiFi radio actively receiving (`P_r`).
    Rx,
    /// WiFi radio actively transmitting (`P_t`).
    Tx,
}

impl RadioState {
    /// Every state, in declaration order (the table's index order).
    pub const ALL: [RadioState; 8] = [
        RadioState::Suspended,
        RadioState::Resuming,
        RadioState::ActiveIdle,
        RadioState::Suspending,
        RadioState::WifiLowPower,
        RadioState::WifiHighPower,
        RadioState::Rx,
        RadioState::Tx,
    ];

    /// Number of states.
    pub const COUNT: usize = RadioState::ALL.len();

    /// Stable snake_case name.
    pub fn name(self) -> &'static str {
        match self {
            RadioState::Suspended => "suspended",
            RadioState::Resuming => "resuming",
            RadioState::ActiveIdle => "active_idle",
            RadioState::Suspending => "suspending",
            RadioState::WifiLowPower => "wifi_low_power",
            RadioState::WifiHighPower => "wifi_high_power",
            RadioState::Rx => "rx",
            RadioState::Tx => "tx",
        }
    }

    /// Dense index (declaration order).
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// One priced transition of the machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transition {
    /// Source state.
    pub from: RadioState,
    /// Destination state.
    pub to: RadioState,
    /// Transition duration, seconds.
    pub duration_secs: f64,
    /// Transition energy, joules (exact profile constant where one
    /// exists, `0.0` for instantaneous mode switches).
    pub energy_j: f64,
    /// The same energy pre-rounded to integer nanojoules — the price
    /// ledger accounting charges.
    pub energy_nj: u64,
}

/// A device's radio behavior as a deterministic transition table:
/// per-state powers, priced transitions, and the PowerTutor promotion
/// knobs (packet-rate threshold, inactivity timer).
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionTable {
    /// Name of the source profile.
    pub profile_name: &'static str,
    /// Per-state power draw, watts, indexed by [`RadioState::index`].
    power_w: [f64; RadioState::COUNT],
    /// The same powers pre-rounded to integer nanowatts (1 nW = 1 nJ/s).
    power_nw: [u64; RadioState::COUNT],
    transitions: Vec<Transition>,
    /// Packet rate above which the WiFi interface is promoted
    /// low-power → high-power, packets/second.
    pub promotion_pkts_per_sec: f64,
    /// High-power → low-power demotion timer, seconds of inactivity.
    pub inactivity_timer_secs: f64,
    /// Wakelock hold time per received broadcast frame `τ`, seconds
    /// (dwelled in [`RadioState::ActiveIdle`]).
    pub wakelock_hold_secs: f64,
}

impl TransitionTable {
    /// Builds the table from a Table I profile with the PowerTutor
    /// default promotion knobs.
    #[must_use]
    pub fn from_profile(profile: &DeviceProfile) -> Self {
        Self::with_wifi_lpm(
            profile,
            DEFAULT_PROMOTION_PKTS_PER_SEC,
            DEFAULT_INACTIVITY_TIMER_SECS,
        )
    }

    /// [`from_profile`](Self::from_profile) with explicit promotion
    /// threshold (packets/second) and inactivity timer (seconds) — the
    /// per-device knobs the policy registry sets.
    #[must_use]
    pub fn with_wifi_lpm(
        profile: &DeviceProfile,
        promotion_pkts_per_sec: f64,
        inactivity_timer_secs: f64,
    ) -> Self {
        let mut power_w = [0.0; RadioState::COUNT];
        power_w[RadioState::Suspended.index()] = profile.suspend_power;
        power_w[RadioState::Resuming.index()] = profile.resume_energy / profile.resume_secs;
        power_w[RadioState::ActiveIdle.index()] = profile.active_idle_power;
        power_w[RadioState::Suspending.index()] = profile.suspend_energy / profile.suspend_secs;
        power_w[RadioState::WifiLowPower.index()] = profile.idle_power * WIFI_LPM_POWER_RATIO;
        power_w[RadioState::WifiHighPower.index()] = profile.idle_power;
        power_w[RadioState::Rx.index()] = profile.rx_power;
        power_w[RadioState::Tx.index()] = profile.tx_power;
        let mut power_nw = [0u64; RadioState::COUNT];
        for (nw, w) in power_nw.iter_mut().zip(power_w) {
            *nw = (w * 1e9).round() as u64;
        }
        let t = |from, to, duration_secs, energy_j| Transition {
            from,
            to,
            duration_secs,
            energy_j,
            energy_nj: joules_to_nj(energy_j),
        };
        let transitions = vec![
            t(
                RadioState::Suspended,
                RadioState::Resuming,
                profile.resume_secs,
                profile.resume_energy,
            ),
            t(RadioState::Resuming, RadioState::ActiveIdle, 0.0, 0.0),
            t(
                RadioState::ActiveIdle,
                RadioState::Suspending,
                profile.suspend_secs,
                profile.suspend_energy,
            ),
            t(RadioState::Suspending, RadioState::Suspended, 0.0, 0.0),
            t(RadioState::ActiveIdle, RadioState::WifiLowPower, 0.0, 0.0),
            t(
                RadioState::WifiLowPower,
                RadioState::WifiHighPower,
                0.0,
                0.0,
            ),
            t(
                RadioState::WifiHighPower,
                RadioState::WifiLowPower,
                0.0,
                0.0,
            ),
            t(RadioState::WifiHighPower, RadioState::Rx, 0.0, 0.0),
            t(RadioState::WifiHighPower, RadioState::Tx, 0.0, 0.0),
            t(RadioState::Rx, RadioState::WifiHighPower, 0.0, 0.0),
            t(RadioState::Tx, RadioState::WifiHighPower, 0.0, 0.0),
        ];
        TransitionTable {
            profile_name: profile.name,
            power_w,
            power_nw,
            transitions,
            promotion_pkts_per_sec,
            inactivity_timer_secs,
            wakelock_hold_secs: profile.wakelock_secs,
        }
    }

    /// Steady-state power of `state`, watts.
    #[inline]
    pub fn power_w(&self, state: RadioState) -> f64 {
        self.power_w[state.index()]
    }

    /// Steady-state power of `state`, integer nanowatts.
    #[inline]
    pub fn power_nw(&self, state: RadioState) -> u64 {
        self.power_nw[state.index()]
    }

    /// Integer-nanojoule price of dwelling `secs` in `state`.
    #[inline]
    pub fn dwell_nj(&self, state: RadioState, secs: f64) -> u64 {
        joules_to_nj(self.power_w[state.index()] * secs)
    }

    /// The priced transition `from → to`, if the machine defines one.
    pub fn transition(&self, from: RadioState, to: RadioState) -> Option<&Transition> {
        self.transitions
            .iter()
            .find(|t| t.from == from && t.to == to)
    }

    /// Every transition, in declaration order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// `T_rm`: duration of the `Suspended → Resuming` edge, seconds.
    #[inline]
    pub fn resume_secs(&self) -> f64 {
        self.transitions[0].duration_secs
    }

    /// `T_sp`: duration of the `ActiveIdle → Suspending` edge, seconds.
    #[inline]
    pub fn suspend_secs(&self) -> f64 {
        self.transitions[2].duration_secs
    }

    /// `E_sp`: energy of the suspend edge, joules.
    #[inline]
    pub fn suspend_energy_j(&self) -> f64 {
        self.transitions[2].energy_j
    }

    /// `E_rm + E_sp`: one full suspend-to-active round trip, joules.
    /// Summed in the same order as
    /// [`DeviceProfile::wake_cycle_energy`](crate::profile::DeviceProfile::wake_cycle_energy),
    /// so the result is bit-identical.
    #[inline]
    pub fn wake_cycle_energy_j(&self) -> f64 {
        self.transitions[0].energy_j + self.transitions[2].energy_j
    }

    /// The WiFi state a sustained packet rate settles in: high-power
    /// above the promotion threshold, low-power below it.
    pub fn steady_wifi_state(&self, pkts_per_sec: f64) -> RadioState {
        if pkts_per_sec > self.promotion_pkts_per_sec {
            RadioState::WifiHighPower
        } else {
            RadioState::WifiLowPower
        }
    }

    /// Whether every price in the table is finite and non-negative —
    /// the invariant the policy proptests pin: no transition or dwell
    /// can ever charge a negative or non-finite nanojoule amount.
    pub fn is_priced_sane(&self) -> bool {
        self.power_w.iter().all(|w| w.is_finite() && *w >= 0.0)
            && self.transitions.iter().all(|t| {
                t.duration_secs.is_finite()
                    && t.duration_secs >= 0.0
                    && t.energy_j.is_finite()
                    && t.energy_j >= 0.0
            })
            && self.promotion_pkts_per_sec.is_finite()
            && self.promotion_pkts_per_sec >= 0.0
            && self.inactivity_timer_secs.is_finite()
            && self.inactivity_timer_secs >= 0.0
            && self.wakelock_hold_secs.is_finite()
            && self.wakelock_hold_secs >= 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{BUILTIN_PROFILES, GALAXY_S4, NEXUS_ONE};

    #[test]
    fn table_preserves_profile_constants_exactly() {
        let t = TransitionTable::from_profile(&NEXUS_ONE);
        assert_eq!(t.power_w(RadioState::Suspended), NEXUS_ONE.suspend_power);
        assert_eq!(
            t.power_w(RadioState::ActiveIdle),
            NEXUS_ONE.active_idle_power
        );
        assert_eq!(t.power_w(RadioState::Rx), NEXUS_ONE.rx_power);
        assert_eq!(t.power_w(RadioState::Tx), NEXUS_ONE.tx_power);
        assert_eq!(t.power_w(RadioState::WifiHighPower), NEXUS_ONE.idle_power);
        assert_eq!(t.resume_secs(), NEXUS_ONE.resume_secs);
        assert_eq!(t.suspend_secs(), NEXUS_ONE.suspend_secs);
        // Bit-identical wake cycle: same operands, same order.
        assert_eq!(t.wake_cycle_energy_j(), NEXUS_ONE.wake_cycle_energy());
    }

    #[test]
    fn wifi_lpm_states_are_ordered() {
        for p in BUILTIN_PROFILES {
            let t = TransitionTable::from_profile(&p);
            assert!(
                t.power_w(RadioState::WifiLowPower) < t.power_w(RadioState::WifiHighPower),
                "{}: low-power listening must undercut the high-power base",
                p.name
            );
            assert!(t.power_w(RadioState::WifiHighPower) < t.power_w(RadioState::Rx));
        }
    }

    #[test]
    fn promotion_threshold_selects_state() {
        let t = TransitionTable::from_profile(&GALAXY_S4);
        assert_eq!(t.steady_wifi_state(0.0), RadioState::WifiLowPower);
        assert_eq!(
            t.steady_wifi_state(DEFAULT_PROMOTION_PKTS_PER_SEC),
            RadioState::WifiLowPower
        );
        assert_eq!(
            t.steady_wifi_state(DEFAULT_PROMOTION_PKTS_PER_SEC + 1.0),
            RadioState::WifiHighPower
        );
        let eager = TransitionTable::with_wifi_lpm(&GALAXY_S4, 2.0, 0.5);
        assert_eq!(eager.steady_wifi_state(3.0), RadioState::WifiHighPower);
    }

    #[test]
    fn all_builtin_tables_priced_sane() {
        for p in BUILTIN_PROFILES {
            let t = TransitionTable::from_profile(&p);
            assert!(t.is_priced_sane(), "{}", p.name);
            for tr in t.transitions() {
                assert_eq!(tr.energy_nj, joules_to_nj(tr.energy_j));
            }
        }
    }

    #[test]
    fn transition_lookup_finds_cycle_edges() {
        let t = TransitionTable::from_profile(&NEXUS_ONE);
        let resume = t
            .transition(RadioState::Suspended, RadioState::Resuming)
            .unwrap();
        assert_eq!(resume.energy_j, NEXUS_ONE.resume_energy);
        assert_eq!(resume.energy_nj, joules_to_nj(NEXUS_ONE.resume_energy));
        assert!(t
            .transition(RadioState::Suspended, RadioState::Tx)
            .is_none());
    }

    #[test]
    fn dwell_pricing_matches_manual_conversion() {
        let t = TransitionTable::from_profile(&NEXUS_ONE);
        assert_eq!(
            t.dwell_nj(RadioState::ActiveIdle, 2.0),
            joules_to_nj(NEXUS_ONE.active_idle_power * 2.0)
        );
        assert_eq!(t.dwell_nj(RadioState::Suspended, 0.0), 0);
    }

    #[test]
    fn state_names_unique() {
        let mut names: Vec<&str> = RadioState::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), RadioState::COUNT);
    }
}
