//! Model inputs: the reception timeline and protocol overhead.

use crate::profile::DeviceProfile;
use std::fmt;

/// Errors produced when constructing model inputs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EnergyError {
    /// The trace duration was not positive.
    NonPositiveDuration(f64),
    /// The beacon interval was not positive.
    NonPositiveBeaconInterval(f64),
    /// Frames were not sorted by start time, or had negative fields.
    InvalidFrame {
        /// Index of the offending frame.
        index: usize,
        /// What was wrong with it.
        reason: &'static str,
    },
}

impl fmt::Display for EnergyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnergyError::NonPositiveDuration(d) => {
                write!(f, "timeline duration {d} must be positive")
            }
            EnergyError::NonPositiveBeaconInterval(b) => {
                write!(f, "beacon interval {b} must be positive")
            }
            EnergyError::InvalidFrame { index, reason } => {
                write!(f, "frame {index} invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for EnergyError {}

/// One broadcast frame as the client's radio receives it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimelineFrame {
    /// Time the frame's transmission starts, seconds from trace start
    /// (the `t_i` of the model).
    pub start: f64,
    /// On-air duration `l_i / r_i` in seconds.
    pub airtime: f64,
    /// The MAC *More Data* bit: when set, the radio idle-listens after
    /// this frame until the next frame or the end of the beacon interval
    /// (Eq. 10).
    pub more_data: bool,
    /// Wakelock duration this frame's processing holds, in seconds.
    /// `τ` for frames the client processes (Eq. 4); `0` for the
    /// "client-side" baseline's drop-immediately handling of useless
    /// frames.
    pub hold: f64,
}

impl TimelineFrame {
    /// Time the frame has been fully received (`t_i + l_i/r_i`).
    pub fn end(&self) -> f64 {
        self.start + self.airtime
    }
}

/// The sequence of frames a client's radio receives, with the beacon
/// schedule they are embedded in.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    duration: f64,
    beacon_interval: f64,
    frames: Vec<TimelineFrame>,
}

impl Timeline {
    /// Creates a validated timeline.
    ///
    /// # Errors
    ///
    /// Returns an [`EnergyError`] when the duration or beacon interval
    /// is non-positive, frames are unsorted, or any frame has a negative
    /// start/airtime/hold or starts beyond the duration.
    pub fn new(
        duration: f64,
        beacon_interval: f64,
        frames: Vec<TimelineFrame>,
    ) -> Result<Self, EnergyError> {
        if !duration.is_finite() || duration <= 0.0 {
            return Err(EnergyError::NonPositiveDuration(duration));
        }
        if !beacon_interval.is_finite() || beacon_interval <= 0.0 {
            return Err(EnergyError::NonPositiveBeaconInterval(beacon_interval));
        }
        let mut prev = f64::NEG_INFINITY;
        for (index, f) in frames.iter().enumerate() {
            if !f.start.is_finite() || f.start < 0.0 {
                return Err(EnergyError::InvalidFrame {
                    index,
                    reason: "negative start time",
                });
            }
            if f.start < prev {
                return Err(EnergyError::InvalidFrame {
                    index,
                    reason: "frames not sorted by start time",
                });
            }
            if !f.airtime.is_finite() || f.airtime < 0.0 {
                return Err(EnergyError::InvalidFrame {
                    index,
                    reason: "negative airtime",
                });
            }
            if !f.hold.is_finite() || f.hold < 0.0 {
                return Err(EnergyError::InvalidFrame {
                    index,
                    reason: "negative wakelock hold",
                });
            }
            if f.start > duration {
                return Err(EnergyError::InvalidFrame {
                    index,
                    reason: "frame starts after trace end",
                });
            }
            prev = f.start;
        }
        Ok(Timeline {
            duration,
            beacon_interval,
            frames,
        })
    }

    /// Total trace duration in seconds.
    pub fn duration(&self) -> f64 {
        self.duration
    }

    /// Beacon interval `T_b` in seconds.
    pub fn beacon_interval(&self) -> f64 {
        self.beacon_interval
    }

    /// The received frames, sorted by start time.
    pub fn frames(&self) -> &[TimelineFrame] {
        &self.frames
    }

    /// Number of beacons transmitted during the trace (the `b_1..b_n`
    /// range of Eq. 6 extended to the full duration).
    pub fn beacon_count(&self) -> u64 {
        (self.duration / self.beacon_interval).ceil() as u64
    }

    /// Index of the beacon interval containing time `t` (the `b_i` of
    /// the model).
    pub fn interval_of(&self, t: f64) -> u64 {
        if t <= 0.0 {
            0
        } else {
            (t / self.beacon_interval) as u64
        }
    }

    /// Start time of beacon interval `i` (Eq. 11, `t_b(i)` with
    /// `t_b(1) = 0` shifted to 0-based indexing).
    pub fn interval_start(&self, i: u64) -> f64 {
        i as f64 * self.beacon_interval
    }

    /// Recomputes every frame's *More Data* bit for a filtered sequence:
    /// set exactly when the next frame falls within the same beacon
    /// interval. This mirrors how an AP marks buffered broadcast frames
    /// during a DTIM delivery and is how `d_more(i)` behaves after HIDE
    /// removes useless frames from the client's perspective.
    pub fn recompute_more_data(&mut self) {
        let n = self.frames.len();
        for i in 0..n {
            let more = if i + 1 < n {
                self.interval_of(self.frames[i].start) == self.interval_of(self.frames[i + 1].start)
            } else {
                false
            };
            self.frames[i].more_data = more;
        }
    }
}

/// HIDE protocol overhead inputs for the `Eo` term (Eqs. 15–19).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overhead {
    /// Total BTIM element bytes received across all beacons
    /// (`Σ L^b_i` of Eq. 16).
    pub btim_bytes_total: f64,
    /// Number of UDP Port Messages the client transmitted (`M`, Eq. 18).
    pub port_messages: u64,
    /// On-air duration of one UDP Port Message in seconds
    /// (`L^m_i / r^m_i` of Eq. 17, PHY preamble included).
    pub port_message_airtime: f64,
}

impl Overhead {
    /// No overhead — the legacy solutions (receive-all, client-side).
    pub const NONE: Overhead = Overhead {
        btim_bytes_total: 0.0,
        port_messages: 0,
        port_message_airtime: 0.0,
    };

    /// Evaluates `Eo = E¹o + E²o`: beacon-byte overhead plus port-message
    /// transmissions.
    pub fn energy(&self, profile: &DeviceProfile) -> f64 {
        let e1 = profile.beacon_energy_per_byte() * self.btim_bytes_total;
        let e2 = self.port_messages as f64 * profile.tx_power * self.port_message_airtime;
        e1 + e2
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::NEXUS_ONE;

    fn frame(start: f64) -> TimelineFrame {
        TimelineFrame {
            start,
            airtime: 0.001,
            more_data: false,
            hold: 1.0,
        }
    }

    #[test]
    fn valid_timeline_accepted() {
        let t = Timeline::new(10.0, 0.1024, vec![frame(1.0), frame(2.0)]).unwrap();
        assert_eq!(t.frames().len(), 2);
        assert_eq!(t.beacon_count(), 98);
    }

    #[test]
    fn rejects_bad_duration_and_interval() {
        assert!(matches!(
            Timeline::new(0.0, 0.1, vec![]),
            Err(EnergyError::NonPositiveDuration(_))
        ));
        assert!(matches!(
            Timeline::new(10.0, 0.0, vec![]),
            Err(EnergyError::NonPositiveBeaconInterval(_))
        ));
        assert!(Timeline::new(f64::NAN, 0.1, vec![]).is_err());
    }

    #[test]
    fn rejects_unsorted_frames() {
        let err = Timeline::new(10.0, 0.1, vec![frame(2.0), frame(1.0)]).unwrap_err();
        assert!(matches!(err, EnergyError::InvalidFrame { index: 1, .. }));
    }

    #[test]
    fn rejects_negative_fields() {
        let mut f = frame(1.0);
        f.airtime = -0.1;
        assert!(Timeline::new(10.0, 0.1, vec![f]).is_err());
        let mut f = frame(1.0);
        f.hold = -1.0;
        assert!(Timeline::new(10.0, 0.1, vec![f]).is_err());
        assert!(Timeline::new(10.0, 0.1, vec![frame(-0.5)]).is_err());
        assert!(Timeline::new(10.0, 0.1, vec![frame(11.0)]).is_err());
    }

    #[test]
    fn interval_mapping() {
        let t = Timeline::new(1.0, 0.1, vec![]).unwrap();
        assert_eq!(t.interval_of(0.0), 0);
        assert_eq!(t.interval_of(0.05), 0);
        assert_eq!(t.interval_of(0.1), 1);
        assert_eq!(t.interval_start(3), 0.30000000000000004);
    }

    #[test]
    fn recompute_more_data_marks_same_interval_runs() {
        let mut t = Timeline::new(
            1.0,
            0.1,
            vec![frame(0.01), frame(0.02), frame(0.25), frame(0.5)],
        )
        .unwrap();
        t.recompute_more_data();
        let more: Vec<bool> = t.frames().iter().map(|f| f.more_data).collect();
        assert_eq!(more, vec![true, false, false, false]);
    }

    #[test]
    fn overhead_none_is_zero() {
        assert_eq!(Overhead::NONE.energy(&NEXUS_ONE), 0.0);
    }

    #[test]
    fn overhead_energy_components() {
        let o = Overhead {
            btim_bytes_total: 1000.0,
            port_messages: 10,
            port_message_airtime: 0.002,
        };
        let e = o.energy(&NEXUS_ONE);
        let expected = 12.5e-6 * 1000.0 + 10.0 * 1.2 * 0.002;
        assert!((e - expected).abs() < 1e-12);
    }

    #[test]
    fn frame_end_is_start_plus_airtime() {
        let f = frame(1.5);
        assert!((f.end() - 1.501).abs() < 1e-12);
    }
}
