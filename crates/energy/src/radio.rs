//! WiFi radio energy: beacon reception (Eq. 6) and broadcast data
//! reception with idle listening (Eqs. 7–11).

use crate::profile::DeviceProfile;
use crate::timeline::Timeline;

/// Radio energy components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioResult {
    /// `Eb` — beacon reception energy (Eq. 6), J.
    pub beacon_energy: f64,
    /// `Ef` — broadcast-frame reception energy (Eq. 7), J.
    pub frame_energy: f64,
    /// Total receive airtime `Σ t_t(i)`, seconds.
    pub receive_time: f64,
    /// Total idle-listening time `Σ t_d(i) + Σ t_f(i)`, seconds.
    pub idle_listen_time: f64,
}

/// Evaluates Eqs. (6)–(11) on a timeline.
///
/// * `Eb = E^u_b · (number of beacons)` — every client wakes its radio
///   for every beacon regardless of traffic.
/// * For each beacon interval containing received frames, the radio
///   idle-listens from the beacon to the first frame (`t_f`, Eq. 9).
/// * After a frame with the *More Data* bit set, the radio idle-listens
///   until the next frame or the end of the beacon interval
///   (`t_d`, Eq. 10).
pub fn evaluate_radio(profile: &DeviceProfile, timeline: &Timeline) -> RadioResult {
    let beacon_energy = profile.beacon_energy * timeline.beacon_count() as f64;

    let frames = timeline.frames();
    let mut receive_time = 0.0f64;
    let mut idle = 0.0f64;
    let mut current_interval: Option<u64> = None;

    for (i, f) in frames.iter().enumerate() {
        receive_time += f.airtime;

        // t_f: idle listening from the beacon to the first frame of each
        // interval that has frames (Eq. 9).
        let interval = timeline.interval_of(f.start);
        if current_interval != Some(interval) {
            current_interval = Some(interval);
            idle += (f.start - timeline.interval_start(interval)).max(0.0);
        }

        // t_d: post-frame listening when More Data is set (Eq. 10).
        if f.more_data {
            let interval_end = timeline.interval_start(interval + 1);
            let next_bound = match frames.get(i + 1) {
                Some(next) => next.start.min(interval_end),
                None => interval_end.min(timeline.duration()),
            };
            idle += (next_bound - f.end()).max(0.0);
        }
    }

    RadioResult {
        beacon_energy,
        frame_energy: profile.rx_power * receive_time + profile.idle_power * idle,
        receive_time,
        idle_listen_time: idle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::NEXUS_ONE;
    use crate::timeline::{Timeline, TimelineFrame};

    const BI: f64 = 0.1024;

    fn frame(start: f64, airtime: f64, more_data: bool) -> TimelineFrame {
        TimelineFrame {
            start,
            airtime,
            more_data,
            hold: 1.0,
        }
    }

    #[test]
    fn beacon_energy_scales_with_duration() {
        let short = Timeline::new(10.0, BI, vec![]).unwrap();
        let long = Timeline::new(100.0, BI, vec![]).unwrap();
        let rs = evaluate_radio(&NEXUS_ONE, &short);
        let rl = evaluate_radio(&NEXUS_ONE, &long);
        assert!(rl.beacon_energy > 9.0 * rs.beacon_energy);
        assert_eq!(rs.frame_energy, 0.0);
    }

    #[test]
    fn receive_time_is_sum_of_airtimes() {
        let t = Timeline::new(
            10.0,
            BI,
            vec![frame(1.0, 0.002, false), frame(2.0, 0.003, false)],
        )
        .unwrap();
        let r = evaluate_radio(&NEXUS_ONE, &t);
        assert!((r.receive_time - 0.005).abs() < 1e-12);
    }

    #[test]
    fn tf_counts_beacon_to_first_frame_per_interval() {
        // Two frames in the same interval: t_f only once, from the
        // interval start to the first frame.
        let start = 10.0 * BI;
        let t = Timeline::new(
            10.0,
            BI,
            vec![
                frame(start + 0.010, 0.0, false),
                frame(start + 0.050, 0.0, false),
            ],
        )
        .unwrap();
        let r = evaluate_radio(&NEXUS_ONE, &t);
        assert!((r.idle_listen_time - 0.010).abs() < 1e-9);
    }

    #[test]
    fn more_data_listens_until_next_frame() {
        let start = 10.0 * BI;
        let t = Timeline::new(
            10.0,
            BI,
            vec![
                frame(start + 0.010, 0.001, true),
                frame(start + 0.030, 0.001, false),
            ],
        )
        .unwrap();
        let r = evaluate_radio(&NEXUS_ONE, &t);
        // t_f = 0.010; t_d = 0.030 - 0.011 = 0.019.
        assert!((r.idle_listen_time - 0.029).abs() < 1e-9);
    }

    #[test]
    fn more_data_on_last_frame_listens_to_interval_end() {
        let start = 10.0 * BI;
        let t = Timeline::new(10.0, BI, vec![frame(start + 0.010, 0.001, true)]).unwrap();
        let r = evaluate_radio(&NEXUS_ONE, &t);
        let td = (11.0 * BI) - (start + 0.011);
        assert!((r.idle_listen_time - (0.010 + td)).abs() < 1e-9);
    }

    #[test]
    fn more_data_clipped_at_interval_boundary() {
        // Next frame is in a later interval: listening stops at the
        // interval end, not the next frame.
        let start = 10.0 * BI;
        let second = start + 2.5 * BI; // middle of interval 12
        let t = Timeline::new(
            10.0,
            BI,
            vec![
                frame(start + 0.010, 0.001, true),
                frame(second, 0.001, false),
            ],
        )
        .unwrap();
        let r = evaluate_radio(&NEXUS_ONE, &t);
        let td = (11.0 * BI) - (start + 0.011);
        let tf_second = 0.5 * BI;
        assert!((r.idle_listen_time - (0.010 + td + tf_second)).abs() < 1e-9);
    }

    #[test]
    fn no_more_data_means_no_post_frame_listening() {
        let start = 10.0 * BI;
        let t = Timeline::new(10.0, BI, vec![frame(start, 0.001, false)]).unwrap();
        let r = evaluate_radio(&NEXUS_ONE, &t);
        assert_eq!(r.idle_listen_time, 0.0);
    }

    #[test]
    fn frame_energy_combines_rx_and_idle_powers() {
        let start = 10.0 * BI;
        let t = Timeline::new(10.0, BI, vec![frame(start + 0.01, 0.002, false)]).unwrap();
        let r = evaluate_radio(&NEXUS_ONE, &t);
        let expected = 0.530 * 0.002 + 0.245 * 0.01;
        assert!((r.frame_energy - expected).abs() < 1e-12);
    }

    #[test]
    fn fewer_received_frames_means_less_energy() {
        let all: Vec<TimelineFrame> = (0..100)
            .map(|i| frame(i as f64 * 0.3, 0.002, false))
            .collect();
        let some: Vec<TimelineFrame> = all.iter().step_by(10).copied().collect();
        let t_all = Timeline::new(60.0, BI, all).unwrap();
        let t_some = Timeline::new(60.0, BI, some).unwrap();
        let r_all = evaluate_radio(&NEXUS_ONE, &t_all);
        let r_some = evaluate_radio(&NEXUS_ONE, &t_some);
        assert!(r_some.frame_energy < r_all.frame_energy);
        assert_eq!(r_some.beacon_energy, r_all.beacon_energy);
    }
}
