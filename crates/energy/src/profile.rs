//! Device power profiles (Table I of the HIDE paper, plus registry
//! extensions).
//!
//! The authors measured two phones with a Monsoon power monitor; since we
//! have no hardware, the constants of Table I are reproduced verbatim.
//! Energies are in joules, powers in watts, durations in seconds. The
//! four additional profiles span the low-power (IoT-class) to
//! high-power (tablet-class) radio range so cross-device experiments
//! have something to sweep; they are plausible extrapolations in the
//! same measurement convention, not published measurements.
//!
//! External crates construct new profiles through
//! [`DeviceProfile::builder`] (or derive one from an existing profile
//! with [`DeviceProfile::derive`]): the struct is `#[non_exhaustive]`,
//! so fields added by future registry work cannot break downstream
//! constructors.

/// Power/energy constants of one smartphone model (one row of Table I).
///
/// All fields use SI base units: energies in joules (J), powers in
/// watts (W), durations in seconds (s). The attribution ledger
/// ([`crate::attribution`]) derives pre-rounded integer nanojoule (nJ)
/// prices from these floats.
///
/// The struct is `#[non_exhaustive]`: construct instances with
/// [`DeviceProfile::builder`] / [`DeviceProfile::derive`] outside this
/// crate. Fields stay `pub`, so reads and in-place mutation still work
/// everywhere.
///
/// # Example
///
/// ```
/// use hide_energy::profile::{DeviceProfile, NEXUS_ONE};
///
/// assert_eq!(NEXUS_ONE.wakelock_secs, 1.0);
/// let wake_cost = NEXUS_ONE.resume_energy + NEXUS_ONE.suspend_energy;
/// assert!((wake_cost - 35.92e-3).abs() < 1e-9);
///
/// // Derive a variant with a longer wakelock without naming every field.
/// let patient = NEXUS_ONE.derive().wakelock_secs(2.0).build();
/// assert_eq!(patient.wakelock_secs, 2.0);
/// assert_eq!(patient.rx_power, NEXUS_ONE.rx_power);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// WiFi-driver wakelock duration `τ` acquired per received broadcast
    /// frame, in seconds (1 s on both measured phones, following the
    /// paper's reference \[6\]).
    pub wakelock_secs: f64,
    /// Duration of a system resume operation `T_rm`, in seconds.
    pub resume_secs: f64,
    /// Duration of a system suspend operation `T_sp`, in seconds.
    pub suspend_secs: f64,
    /// Energy of one complete resume operation `E_rm`, in joules (J).
    pub resume_energy: f64,
    /// Energy of one complete suspend operation `E_sp`, in joules (J).
    pub suspend_energy: f64,
    /// Energy to receive one beacon frame `E^u_b`, in joules (J).
    /// Table I lists this per beacon at the nominal beacon length
    /// [`DeviceProfile::NOMINAL_BEACON_BYTES`]; per-byte costs (used for
    /// the BTIM overhead of Eq. 16) are derived from it.
    pub beacon_energy: f64,
    /// WiFi radio receive power `P_r`, in watts (W).
    pub rx_power: f64,
    /// WiFi radio transmit power `P_t`, in watts (W).
    pub tx_power: f64,
    /// WiFi radio idle-listening power `P_idle`, in watts (W).
    pub idle_power: f64,
    /// Whole-system suspend-mode power `P_ss`, in watts (W).
    pub suspend_power: f64,
    /// Whole-system active-idle power `P_sa`, in watts (W) — what a
    /// wakelock burns.
    pub active_idle_power: f64,
}

impl DeviceProfile {
    /// Nominal beacon length used to convert the per-beacon energy
    /// `E^u_b` into a per-byte cost for the BTIM overhead term, in
    /// bytes.
    pub const NOMINAL_BEACON_BYTES: f64 = 100.0;

    /// A builder starting from the [`NEXUS_ONE`] constants under a new
    /// name. Override any subset of fields, then
    /// [`DeviceProfileBuilder::build`].
    #[must_use]
    pub fn builder(name: &'static str) -> DeviceProfileBuilder {
        let mut b = DeviceProfileBuilder { profile: NEXUS_ONE };
        b.profile.name = name;
        b
    }

    /// A builder seeded with this profile's constants — the
    /// `#[non_exhaustive]`-safe replacement for struct-update syntax
    /// (`DeviceProfile { wakelock_secs: t, ..base }`).
    #[must_use]
    pub fn derive(&self) -> DeviceProfileBuilder {
        DeviceProfileBuilder { profile: *self }
    }

    /// Energy to receive one extra byte inside a beacon (J/byte),
    /// derived from [`DeviceProfile::beacon_energy`].
    pub fn beacon_energy_per_byte(&self) -> f64 {
        self.beacon_energy / Self::NOMINAL_BEACON_BYTES
    }

    /// Energy of one full suspend-to-active round trip
    /// (`E_rm + E_sp`), in joules — the per-wake cost charged by
    /// Eq. (13).
    pub fn wake_cycle_energy(&self) -> f64 {
        self.resume_energy + self.suspend_energy
    }

    /// Validates that every constant is physically sensible (positive
    /// durations and powers, suspend power below active power).
    pub fn is_consistent(&self) -> bool {
        self.wakelock_secs > 0.0
            && self.resume_secs > 0.0
            && self.suspend_secs > 0.0
            && self.resume_energy > 0.0
            && self.suspend_energy > 0.0
            && self.beacon_energy > 0.0
            && self.rx_power > 0.0
            && self.tx_power > 0.0
            && self.idle_power > 0.0
            && self.suspend_power > 0.0
            && self.active_idle_power > 0.0
            && self.suspend_power < self.active_idle_power
            && self.idle_power < self.rx_power
    }
}

/// Builder for [`DeviceProfile`] — the only way to construct one
/// outside this crate (the struct is `#[non_exhaustive]`). Every field
/// defaults to the seed profile's value, so adding fields to
/// [`DeviceProfile`] can never break downstream constructors.
#[derive(Debug, Clone, Copy)]
pub struct DeviceProfileBuilder {
    profile: DeviceProfile,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident),+ $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $field(mut self, value: f64) -> Self {
                self.profile.$field = value;
                self
            }
        )+
    };
}

impl DeviceProfileBuilder {
    builder_setters! {
        /// Sets the per-frame wakelock duration `τ`, seconds.
        wakelock_secs,
        /// Sets the resume-operation duration `T_rm`, seconds.
        resume_secs,
        /// Sets the suspend-operation duration `T_sp`, seconds.
        suspend_secs,
        /// Sets the resume-operation energy `E_rm`, joules.
        resume_energy,
        /// Sets the suspend-operation energy `E_sp`, joules.
        suspend_energy,
        /// Sets the per-beacon reception energy `E^u_b`, joules.
        beacon_energy,
        /// Sets the radio receive power `P_r`, watts.
        rx_power,
        /// Sets the radio transmit power `P_t`, watts.
        tx_power,
        /// Sets the radio idle-listening power `P_idle`, watts.
        idle_power,
        /// Sets the whole-system suspend power `P_ss`, watts.
        suspend_power,
        /// Sets the whole-system active-idle power `P_sa`, watts.
        active_idle_power,
    }

    /// Renames the profile.
    #[must_use]
    pub fn name(mut self, name: &'static str) -> Self {
        self.profile.name = name;
        self
    }

    /// Finishes the builder. No validation is applied — call
    /// [`DeviceProfile::is_consistent`] to sanity-check the result.
    #[must_use]
    pub fn build(self) -> DeviceProfile {
        self.profile
    }
}

/// Table I row for the HTC/Google Nexus One.
pub const NEXUS_ONE: DeviceProfile = DeviceProfile {
    name: "Nexus One",
    wakelock_secs: 1.0,
    resume_secs: 0.046,
    suspend_secs: 0.086,
    resume_energy: 18.26e-3,
    suspend_energy: 17.66e-3,
    beacon_energy: 1.25e-3,
    rx_power: 0.530,
    tx_power: 1.200,
    idle_power: 0.245,
    suspend_power: 0.011,
    active_idle_power: 0.125,
};

/// Table I row for the Samsung Galaxy S4.
pub const GALAXY_S4: DeviceProfile = DeviceProfile {
    name: "Galaxy S4",
    wakelock_secs: 1.0,
    resume_secs: 0.044,
    suspend_secs: 0.165,
    resume_energy: 58.3e-3,
    suspend_energy: 85.8e-3,
    beacon_energy: 1.71e-3,
    rx_power: 0.538,
    tx_power: 1.500,
    idle_power: 0.275,
    suspend_power: 0.015,
    active_idle_power: 0.130,
};

/// Registry extension: a mid-tier 2019 phone with an efficient radio
/// and cheap state transfers (wake cycle ≈ 23.3 mJ, well under the
/// Nexus One's 35.9 mJ).
pub const PIXEL_3A: DeviceProfile = DeviceProfile {
    name: "Pixel 3a",
    wakelock_secs: 1.0,
    resume_secs: 0.038,
    suspend_secs: 0.070,
    resume_energy: 12.4e-3,
    suspend_energy: 10.9e-3,
    beacon_energy: 0.98e-3,
    rx_power: 0.420,
    tx_power: 0.980,
    idle_power: 0.195,
    suspend_power: 0.008,
    active_idle_power: 0.105,
};

/// Registry extension: a large phablet with a high-power radio and
/// expensive state transfers (wake cycle ≈ 156.7 mJ, above the S4).
pub const NOTE_4: DeviceProfile = DeviceProfile {
    name: "Note 4",
    wakelock_secs: 1.0,
    resume_secs: 0.052,
    suspend_secs: 0.180,
    resume_energy: 64.2e-3,
    suspend_energy: 92.5e-3,
    beacon_energy: 1.88e-3,
    rx_power: 0.610,
    tx_power: 1.650,
    idle_power: 0.300,
    suspend_power: 0.017,
    active_idle_power: 0.145,
};

/// Registry extension: an IoT-class WiFi camera — a low-power radio,
/// a short wakelock, and near-zero suspend draw. The cheapest wake in
/// the registry (≈ 5.8 mJ).
pub const IOT_CAM: DeviceProfile = DeviceProfile {
    name: "IoT Cam",
    wakelock_secs: 0.5,
    resume_secs: 0.020,
    suspend_secs: 0.040,
    resume_energy: 3.1e-3,
    suspend_energy: 2.7e-3,
    beacon_energy: 0.42e-3,
    rx_power: 0.210,
    tx_power: 0.540,
    idle_power: 0.092,
    suspend_power: 0.0021,
    active_idle_power: 0.036,
};

/// Registry extension: a tablet — the highest-power radio and the most
/// expensive state transfers in the registry (wake cycle ≈ 210 mJ),
/// offset by a much larger battery.
pub const TABLET_PRO: DeviceProfile = DeviceProfile {
    name: "Tablet Pro",
    wakelock_secs: 1.5,
    resume_secs: 0.058,
    suspend_secs: 0.210,
    resume_energy: 88.6e-3,
    suspend_energy: 121.4e-3,
    beacon_energy: 2.35e-3,
    rx_power: 0.720,
    tx_power: 1.900,
    idle_power: 0.340,
    suspend_power: 0.022,
    active_idle_power: 0.190,
};

/// Both Table I profiles, in paper order.
pub const ALL_PROFILES: [DeviceProfile; 2] = [NEXUS_ONE, GALAXY_S4];

/// Every built-in profile: Table I plus the registry extensions, in
/// registry order (see `hide_policy::registry`).
pub const BUILTIN_PROFILES: [DeviceProfile; 6] =
    [NEXUS_ONE, GALAXY_S4, PIXEL_3A, NOTE_4, IOT_CAM, TABLET_PRO];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_profiles_are_consistent() {
        for p in ALL_PROFILES {
            assert!(p.is_consistent(), "{} profile inconsistent", p.name);
        }
    }

    #[test]
    fn builtin_profiles_are_consistent_and_distinct() {
        for p in BUILTIN_PROFILES {
            assert!(p.is_consistent(), "{} profile inconsistent", p.name);
        }
        let mut names: Vec<&str> = BUILTIN_PROFILES.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), BUILTIN_PROFILES.len());
    }

    #[test]
    fn registry_spans_low_to_high_power_radios() {
        // The extensions bracket the Table I phones on both axes the
        // paper cares about: radio receive power and wake-cycle cost.
        let rx = |p: &DeviceProfile| p.rx_power;
        assert!(rx(&IOT_CAM) < rx(&NEXUS_ONE));
        assert!(rx(&TABLET_PRO) > rx(&GALAXY_S4));
        assert!(IOT_CAM.wake_cycle_energy() < PIXEL_3A.wake_cycle_energy());
        assert!(PIXEL_3A.wake_cycle_energy() < NEXUS_ONE.wake_cycle_energy());
        assert!(NOTE_4.wake_cycle_energy() > GALAXY_S4.wake_cycle_energy());
        assert!(TABLET_PRO.wake_cycle_energy() > NOTE_4.wake_cycle_energy());
    }

    #[test]
    fn s4_state_transfers_cost_more() {
        // The paper observes state-transfer overhead is much higher on
        // the Galaxy S4, which is why "client-side" barely helps there.
        assert!(GALAXY_S4.wake_cycle_energy() > 3.0 * NEXUS_ONE.wake_cycle_energy());
    }

    #[test]
    fn wake_cycle_energy_matches_table() {
        assert!((NEXUS_ONE.wake_cycle_energy() - 35.92e-3).abs() < 1e-9);
        assert!((GALAXY_S4.wake_cycle_energy() - 144.1e-3).abs() < 1e-9);
    }

    #[test]
    fn per_byte_beacon_energy_is_small() {
        assert!(NEXUS_ONE.beacon_energy_per_byte() < NEXUS_ONE.beacon_energy);
        assert!((NEXUS_ONE.beacon_energy_per_byte() - 12.5e-6).abs() < 1e-12);
    }

    #[test]
    fn inconsistent_profile_detected() {
        let mut p = NEXUS_ONE;
        p.suspend_power = 1.0; // above active power
        assert!(!p.is_consistent());
        let mut p = NEXUS_ONE;
        p.rx_power = -1.0;
        assert!(!p.is_consistent());
    }

    #[test]
    fn builder_round_trips_and_overrides() {
        // derive().build() is the identity.
        assert_eq!(NEXUS_ONE.derive().build(), NEXUS_ONE);
        // builder() seeds from NEXUS_ONE under the new name.
        let custom = DeviceProfile::builder("custom")
            .rx_power(0.6)
            .tx_power(1.4)
            .build();
        assert_eq!(custom.name, "custom");
        assert_eq!(custom.rx_power, 0.6);
        assert_eq!(custom.tx_power, 1.4);
        assert_eq!(custom.wakelock_secs, NEXUS_ONE.wakelock_secs);
        assert!(custom.is_consistent());
    }

    #[test]
    fn table_i_exact_values() {
        assert_eq!(NEXUS_ONE.resume_secs, 0.046);
        assert_eq!(NEXUS_ONE.suspend_secs, 0.086);
        assert_eq!(GALAXY_S4.resume_secs, 0.044);
        assert_eq!(GALAXY_S4.suspend_secs, 0.165);
        assert_eq!(NEXUS_ONE.tx_power, 1.2);
        assert_eq!(GALAXY_S4.tx_power, 1.5);
        assert_eq!(NEXUS_ONE.suspend_power, 0.011);
        assert_eq!(GALAXY_S4.suspend_power, 0.015);
    }
}
