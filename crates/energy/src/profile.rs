//! Device power profiles (Table I of the HIDE paper).
//!
//! The authors measured two phones with a Monsoon power monitor; since we
//! have no hardware, the constants of Table I are reproduced verbatim.
//! Energies are in joules, powers in watts, durations in seconds.

/// Power/energy constants of one smartphone model (one row of Table I).
///
/// # Example
///
/// ```
/// use hide_energy::profile::{DeviceProfile, NEXUS_ONE};
///
/// assert_eq!(NEXUS_ONE.wakelock_secs, 1.0);
/// let wake_cost = NEXUS_ONE.resume_energy + NEXUS_ONE.suspend_energy;
/// assert!((wake_cost - 35.92e-3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: &'static str,
    /// WiFi-driver wakelock duration `τ` acquired per received broadcast
    /// frame (1 s on both measured phones, following the paper's reference \[6\]).
    pub wakelock_secs: f64,
    /// Duration of a system resume operation `T_rm`.
    pub resume_secs: f64,
    /// Duration of a system suspend operation `T_sp`.
    pub suspend_secs: f64,
    /// Energy of one complete resume operation `E_rm` (J).
    pub resume_energy: f64,
    /// Energy of one complete suspend operation `E_sp` (J).
    pub suspend_energy: f64,
    /// Energy to receive one beacon frame `E^u_b` (J). Table I lists
    /// this per beacon at the nominal beacon length
    /// [`DeviceProfile::NOMINAL_BEACON_BYTES`]; per-byte costs (used for
    /// the BTIM overhead of Eq. 16) are derived from it.
    pub beacon_energy: f64,
    /// WiFi radio receive power `P_r` (W).
    pub rx_power: f64,
    /// WiFi radio transmit power `P_t` (W).
    pub tx_power: f64,
    /// WiFi radio idle-listening power `P_idle` (W).
    pub idle_power: f64,
    /// Whole-system suspend-mode power `P_ss` (W).
    pub suspend_power: f64,
    /// Whole-system active-idle power `P_sa` (W) — what a wakelock burns.
    pub active_idle_power: f64,
}

impl DeviceProfile {
    /// Nominal beacon length used to convert the per-beacon energy
    /// `E^u_b` into a per-byte cost for the BTIM overhead term.
    pub const NOMINAL_BEACON_BYTES: f64 = 100.0;

    /// Energy to receive one extra byte inside a beacon (J/byte),
    /// derived from [`DeviceProfile::beacon_energy`].
    pub fn beacon_energy_per_byte(&self) -> f64 {
        self.beacon_energy / Self::NOMINAL_BEACON_BYTES
    }

    /// Energy of one full suspend-to-active round trip
    /// (`E_rm + E_sp`), the per-wake cost charged by Eq. (13).
    pub fn wake_cycle_energy(&self) -> f64 {
        self.resume_energy + self.suspend_energy
    }

    /// Validates that every constant is physically sensible (positive
    /// durations and powers, suspend power below active power).
    pub fn is_consistent(&self) -> bool {
        self.wakelock_secs > 0.0
            && self.resume_secs > 0.0
            && self.suspend_secs > 0.0
            && self.resume_energy > 0.0
            && self.suspend_energy > 0.0
            && self.beacon_energy > 0.0
            && self.rx_power > 0.0
            && self.tx_power > 0.0
            && self.idle_power > 0.0
            && self.suspend_power > 0.0
            && self.active_idle_power > 0.0
            && self.suspend_power < self.active_idle_power
            && self.idle_power < self.rx_power
    }
}

/// Table I row for the HTC/Google Nexus One.
pub const NEXUS_ONE: DeviceProfile = DeviceProfile {
    name: "Nexus One",
    wakelock_secs: 1.0,
    resume_secs: 0.046,
    suspend_secs: 0.086,
    resume_energy: 18.26e-3,
    suspend_energy: 17.66e-3,
    beacon_energy: 1.25e-3,
    rx_power: 0.530,
    tx_power: 1.200,
    idle_power: 0.245,
    suspend_power: 0.011,
    active_idle_power: 0.125,
};

/// Table I row for the Samsung Galaxy S4.
pub const GALAXY_S4: DeviceProfile = DeviceProfile {
    name: "Galaxy S4",
    wakelock_secs: 1.0,
    resume_secs: 0.044,
    suspend_secs: 0.165,
    resume_energy: 58.3e-3,
    suspend_energy: 85.8e-3,
    beacon_energy: 1.71e-3,
    rx_power: 0.538,
    tx_power: 1.500,
    idle_power: 0.275,
    suspend_power: 0.015,
    active_idle_power: 0.130,
};

/// Both Table I profiles, in paper order.
pub const ALL_PROFILES: [DeviceProfile; 2] = [NEXUS_ONE, GALAXY_S4];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_i_profiles_are_consistent() {
        for p in ALL_PROFILES {
            assert!(p.is_consistent(), "{} profile inconsistent", p.name);
        }
    }

    #[test]
    fn s4_state_transfers_cost_more() {
        // The paper observes state-transfer overhead is much higher on
        // the Galaxy S4, which is why "client-side" barely helps there.
        assert!(GALAXY_S4.wake_cycle_energy() > 3.0 * NEXUS_ONE.wake_cycle_energy());
    }

    #[test]
    fn wake_cycle_energy_matches_table() {
        assert!((NEXUS_ONE.wake_cycle_energy() - 35.92e-3).abs() < 1e-9);
        assert!((GALAXY_S4.wake_cycle_energy() - 144.1e-3).abs() < 1e-9);
    }

    #[test]
    fn per_byte_beacon_energy_is_small() {
        assert!(NEXUS_ONE.beacon_energy_per_byte() < NEXUS_ONE.beacon_energy);
        assert!((NEXUS_ONE.beacon_energy_per_byte() - 12.5e-6).abs() < 1e-12);
    }

    #[test]
    fn inconsistent_profile_detected() {
        let mut p = NEXUS_ONE;
        p.suspend_power = 1.0; // above active power
        assert!(!p.is_consistent());
        let mut p = NEXUS_ONE;
        p.rx_power = -1.0;
        assert!(!p.is_consistent());
    }

    #[test]
    fn table_i_exact_values() {
        assert_eq!(NEXUS_ONE.resume_secs, 0.046);
        assert_eq!(NEXUS_ONE.suspend_secs, 0.086);
        assert_eq!(GALAXY_S4.resume_secs, 0.044);
        assert_eq!(GALAXY_S4.suspend_secs, 0.165);
        assert_eq!(NEXUS_ONE.tx_power, 1.2);
        assert_eq!(GALAXY_S4.tx_power, 1.5);
        assert_eq!(NEXUS_ONE.suspend_power, 0.011);
        assert_eq!(GALAXY_S4.suspend_power, 0.015);
    }
}
