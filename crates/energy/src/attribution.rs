//! Per-client, per-cause energy attribution — the join between the
//! wakeup-provenance stream and the Table I device profiles.
//!
//! The fleet pipeline already classifies every wake decision (proper /
//! legacy / spurious / missed, each with a causal tag); this module
//! prices those decisions in joules so the provenance breakdown becomes
//! an energy budget. Two producers feed the same ledger type:
//!
//! * **online** — the BSS engine charges each energy event into an
//!   [`AttributionLedger`] as it happens (beacons, burst receptions,
//!   refresh transmissions, wake cycles), keyed by `(source, aid)`;
//! * **trace join** — [`AttributionLedger::price`] multiplies the
//!   per-client wake counts of an [`hide_obs::ProvenanceLedger`] by the
//!   per-event prices of a [`WakePricing`].
//!
//! Because both paths charge the *same pre-rounded integer price* per
//! wake event, the wake columns of the online ledger and the trace-join
//! ledger are **exactly** equal — not merely close — which is the
//! invariant the fleet tests pin down.
//!
//! # Why integer nanojoules
//!
//! The ledger accounts in `u64` nanojoules rather than `f64` joules for
//! two reasons. First, the `hide-metrics/1` artifact is integer-only by
//! schema, so the energy section can ride in it unchanged. Second,
//! integer addition is exactly associative and commutative, so shard
//! ledgers fanned in from any `--jobs` split merge to byte-identical
//! output — the same determinism contract the [`hide_obs::Recorder`]
//! obeys. At Table I magnitudes (`u64::MAX` nJ ≈ 1.8×10¹⁰ J) overflow
//! would take ~10⁸ device-years of wakeups; far beyond any fleet run.
//!
//! # Pricing model
//!
//! * A **proper, legacy or spurious** wake costs one full
//!   suspend-to-active round trip plus the wakelock tail:
//!   `E_rm + E_sp + τ·P_sa` (Eqs. 12–13) — for spurious wakes this is
//!   the *resume–tail–suspend* energy wasted on stale interests.
//! * A **missed** wake is priced at the *forgone-suspend* cost: the
//!   wake-cycle energy the client would have spent minus the suspend
//!   floor it actually burned over the same window,
//!   `(E_rm + E_sp + τ·P_sa) − (T_rm + τ + T_sp)·P_ss`. Missed energy
//!   is a counterfactual — traffic the client wanted slipped past — so
//!   it is reported separately and **excluded** from
//!   [`ClientEnergy::spent_nj`].

use crate::profile::DeviceProfile;
use hide_obs::provenance::{ClientKey, ProvenanceLedger};
use hide_obs::{WakeCause, WakeClass};
use std::fmt::Write as _;

/// Converts joules to the ledger's integer nanojoule unit (half-up
/// rounding). Each conversion is exact to ±0.5 nJ.
#[must_use]
pub fn joules_to_nj(joules: f64) -> u64 {
    (joules * 1e9).round() as u64
}

/// Pre-rounded integer prices (nanojoules) for one wake event under a
/// device profile.
///
/// Both the online engine and the trace join charge these exact
/// integers, so `count × price` accounting and per-event accounting
/// agree bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WakePricing {
    /// Full wake cycle: `E_rm + E_sp + τ·P_sa`, nJ.
    pub wake_nj: u64,
    /// Forgone-suspend price of a missed wake: wake cycle minus the
    /// suspend floor over the same `T_rm + τ + T_sp` window, nJ.
    pub forgone_nj: u64,
    /// One DTIM beacon reception `E^u_b`, nJ.
    pub beacon_nj: u64,
}

impl WakePricing {
    /// Derives the integer prices from a Table I profile, by way of its
    /// [`TransitionTable`](crate::fsm::TransitionTable). The table
    /// stores the profile's constants verbatim and
    /// [`from_table`](Self::from_table) performs the same operations in
    /// the same order, so the prices are bit-identical to the
    /// flat-constant derivation this replaced.
    #[must_use]
    pub fn from_profile(profile: &DeviceProfile) -> Self {
        let mut pricing = Self::from_table(&crate::fsm::TransitionTable::from_profile(profile));
        pricing.beacon_nj = joules_to_nj(profile.beacon_energy);
        pricing
    }

    /// Derives the integer prices from a multi-radio transition table:
    /// the wake price is the `Suspended → Resuming` plus `ActiveIdle →
    /// Suspending` edge energies plus the wakelock dwell in
    /// `ActiveIdle`; the forgone price subtracts the `Suspended` dwell
    /// over the same window. The table carries no beacon length, so
    /// `beacon_nj` is 0 — [`from_profile`](Self::from_profile) fills it
    /// in.
    #[must_use]
    pub fn from_table(table: &crate::fsm::TransitionTable) -> Self {
        use crate::fsm::RadioState;
        let wake_j = table.wake_cycle_energy_j()
            + table.wakelock_hold_secs * table.power_w(RadioState::ActiveIdle);
        let window_secs = table.resume_secs() + table.wakelock_hold_secs + table.suspend_secs();
        let floor_j = window_secs * table.power_w(RadioState::Suspended);
        let wake_nj = joules_to_nj(wake_j);
        WakePricing {
            wake_nj,
            forgone_nj: wake_nj.saturating_sub(joules_to_nj(floor_j)),
            beacon_nj: 0,
        }
    }
}

/// Nanojoules attributed per causal tag (mirrors
/// [`hide_obs::CauseCounts`], but holding energy instead of counts).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CauseEnergy {
    /// Energy attributed to lost UDP Port Message refreshes, nJ.
    pub refresh_lost: u64,
    /// Energy attributed to stale-timeout expiry of port entries, nJ.
    pub entry_expired: u64,
    /// Energy attributed to port churn between refreshes, nJ.
    pub port_churn: u64,
    /// Energy with no attributable cause, nJ.
    pub unknown: u64,
}

impl CauseEnergy {
    /// Sum across causes, nJ.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.refresh_lost + self.entry_expired + self.port_churn + self.unknown
    }

    /// Charges `nj` to the slot for `cause`.
    pub fn charge(&mut self, cause: WakeCause, nj: u64) {
        match cause {
            WakeCause::RefreshLost => self.refresh_lost += nj,
            WakeCause::EntryExpired => self.entry_expired += nj,
            WakeCause::PortChurn => self.port_churn += nj,
            WakeCause::Proper | WakeCause::Unknown => self.unknown += nj,
        }
    }

    /// Adds another tally into this one (field-wise).
    pub fn merge_from(&mut self, other: &CauseEnergy) {
        self.refresh_lost += other.refresh_lost;
        self.entry_expired += other.entry_expired;
        self.port_churn += other.port_churn;
        self.unknown += other.unknown;
    }
}

/// Energy attributed to one client lane, nJ throughout.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientEnergy {
    /// Wake cycles that delivered wanted traffic.
    pub proper_nj: u64,
    /// Wake cycles of legacy (non-HIDE) clients.
    pub legacy_nj: u64,
    /// Wasted wake cycles (stale interests), split by cause.
    pub spurious_nj: CauseEnergy,
    /// Forgone-suspend cost of missed wakes, split by cause.
    /// Counterfactual — excluded from [`ClientEnergy::spent_nj`].
    pub missed_forgone_nj: CauseEnergy,
    /// DTIM beacon receptions.
    pub beacon_nj: u64,
    /// Broadcast-burst receptions (awake or woken).
    pub burst_rx_nj: u64,
    /// UDP Port Message transmissions.
    pub refresh_tx_nj: u64,
}

impl ClientEnergy {
    /// Energy the client actually consumed, nJ: everything except the
    /// counterfactual missed-wake column.
    #[must_use]
    pub fn spent_nj(&self) -> u64 {
        self.proper_nj
            + self.legacy_nj
            + self.spurious_nj.total()
            + self.beacon_nj
            + self.burst_rx_nj
            + self.refresh_tx_nj
    }

    /// Charges one wake decision at the given pricing.
    pub fn charge_wake(&mut self, class: WakeClass, cause: WakeCause, pricing: &WakePricing) {
        match class {
            WakeClass::Proper => self.proper_nj += pricing.wake_nj,
            WakeClass::Legacy => self.legacy_nj += pricing.wake_nj,
            WakeClass::Spurious => self.spurious_nj.charge(cause, pricing.wake_nj),
            WakeClass::Missed => self.missed_forgone_nj.charge(cause, pricing.forgone_nj),
        }
    }

    /// Adds another client tally into this one (field-wise).
    pub fn merge_from(&mut self, other: &ClientEnergy) {
        self.proper_nj += other.proper_nj;
        self.legacy_nj += other.legacy_nj;
        self.spurious_nj.merge_from(&other.spurious_nj);
        self.missed_forgone_nj.merge_from(&other.missed_forgone_nj);
        self.beacon_nj += other.beacon_nj;
        self.burst_rx_nj += other.burst_rx_nj;
        self.refresh_tx_nj += other.refresh_tx_nj;
    }
}

/// The per-client joule ledger: `(source, aid) → ClientEnergy`, rows
/// kept sorted by key.
///
/// `source` is the fleet BSS index (or the flight-recorder source
/// lane), `aid` the 802.11 association ID — one row per *association
/// lane*, the only client identity the on-air protocol exposes. When an
/// AP reuses an AID after a leave/join, charges from both tenancies land
/// on the same row; the ledger prices lanes, not persistent devices.
///
/// Merging is field-wise `u64` addition on sorted rows, so it is
/// exactly associative and commutative: shard ledgers fanned in from
/// any `--jobs` split produce byte-identical exports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AttributionLedger {
    rows: Vec<(ClientKey, ClientEnergy)>,
}

impl AttributionLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        AttributionLedger { rows: Vec::new() }
    }

    /// Builds a ledger directly from rows already sorted strictly
    /// ascending by key — the zero-cost exit for producers (like the
    /// BSS engine's dense per-AID lanes) that accumulate charges in
    /// key order and only need the ledger shape at the end.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the rows are not strictly sorted;
    /// an unsorted ledger would silently break `entry`/`get`/`merge`.
    #[must_use]
    pub fn from_sorted_rows(rows: Vec<(ClientKey, ClientEnergy)>) -> Self {
        debug_assert!(
            rows.windows(2).all(|w| w[0].0 < w[1].0),
            "rows must be strictly ascending by (source, aid)"
        );
        AttributionLedger { rows }
    }

    /// The rows, sorted by `(source, aid)`.
    #[must_use]
    pub fn rows(&self) -> &[(ClientKey, ClientEnergy)] {
        &self.rows
    }

    /// Number of client lanes with at least one charge.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no charge has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The tally for one client lane, if any charge was recorded.
    #[must_use]
    pub fn get(&self, key: ClientKey) -> Option<&ClientEnergy> {
        self.rows
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| &self.rows[i].1)
    }

    /// Mutable tally for `key`, inserting a zero row at the sorted
    /// position on first touch.
    pub fn entry(&mut self, key: ClientKey) -> &mut ClientEnergy {
        let i = match self.rows.binary_search_by_key(&key, |(k, _)| *k) {
            Ok(i) => i,
            Err(i) => {
                self.rows.insert(i, (key, ClientEnergy::default()));
                i
            }
        };
        &mut self.rows[i].1
    }

    /// Fleet-wide tally: every row summed field-wise.
    #[must_use]
    pub fn totals(&self) -> ClientEnergy {
        let mut out = ClientEnergy::default();
        for (_, e) in &self.rows {
            out.merge_from(e);
        }
        out
    }

    /// Energy the whole ledger actually consumed, nJ.
    #[must_use]
    pub fn spent_nj(&self) -> u64 {
        self.rows.iter().map(|(_, e)| e.spent_nj()).sum()
    }

    /// Folds another ledger into this one: rows with equal keys add
    /// field-wise, others interleave at their sorted positions.
    ///
    /// Disjoint key ranges append in place: the fleet fan-in folds
    /// shard ledgers in ascending source order, so without this fast
    /// path every fold would re-copy all previously merged rows and
    /// the sequential merge would go quadratic in the shard count.
    pub fn merge_from(&mut self, other: &AttributionLedger) {
        if other.rows.is_empty() {
            return;
        }
        match self.rows.last() {
            None => {
                self.rows = other.rows.clone();
                return;
            }
            Some((last, _)) if other.rows[0].0 > *last => {
                self.rows.extend_from_slice(&other.rows);
                return;
            }
            Some(_) => {}
        }
        let mut merged = Vec::with_capacity(self.rows.len() + other.rows.len());
        let mut a = self.rows.iter().peekable();
        let mut b = other.rows.iter().peekable();
        loop {
            match (a.peek(), b.peek()) {
                (Some((ka, ea)), Some((kb, eb))) => match ka.cmp(kb) {
                    std::cmp::Ordering::Less => {
                        merged.push((*ka, *ea));
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((*kb, *eb));
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        let mut e = *ea;
                        e.merge_from(eb);
                        merged.push((*ka, e));
                        a.next();
                        b.next();
                    }
                },
                (Some(&&row), None) => {
                    merged.push(row);
                    a.next();
                }
                (None, Some(&&row)) => {
                    merged.push(row);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.rows = merged;
    }

    /// Prices a provenance wake-count ledger: every per-client wake
    /// count is multiplied by the matching [`WakePricing`] integer
    /// price. Only the wake columns are populated — beacon, burst and
    /// refresh energy are not visible in wake decisions — and those
    /// columns equal the online engine's exactly.
    #[must_use]
    pub fn price(wakes: &ProvenanceLedger, profile: &DeviceProfile) -> Self {
        let pricing = WakePricing::from_profile(profile);
        let mut out = AttributionLedger::new();
        for (key, w) in wakes.rows() {
            let e = out.entry(*key);
            e.proper_nj = w.proper * pricing.wake_nj;
            e.legacy_nj = w.legacy * pricing.wake_nj;
            e.spurious_nj = CauseEnergy {
                refresh_lost: w.spurious.refresh_lost * pricing.wake_nj,
                entry_expired: w.spurious.entry_expired * pricing.wake_nj,
                port_churn: w.spurious.port_churn * pricing.wake_nj,
                unknown: w.spurious.unknown * pricing.wake_nj,
            };
            e.missed_forgone_nj = CauseEnergy {
                refresh_lost: w.missed.refresh_lost * pricing.forgone_nj,
                entry_expired: w.missed.entry_expired * pricing.forgone_nj,
                port_churn: w.missed.port_churn * pricing.forgone_nj,
                unknown: w.missed.unknown * pricing.forgone_nj,
            };
        }
        out
    }

    /// True when the wake columns (proper, legacy, spurious, missed) of
    /// both ledgers are identical row-for-row, ignoring the beacon,
    /// burst and refresh columns the trace join cannot see.
    #[must_use]
    pub fn wake_columns_eq(&self, other: &AttributionLedger) -> bool {
        fn wake_rows(
            l: &AttributionLedger,
        ) -> Vec<(ClientKey, u64, u64, CauseEnergy, CauseEnergy)> {
            l.rows
                .iter()
                .map(|(k, e)| {
                    (
                        *k,
                        e.proper_nj,
                        e.legacy_nj,
                        e.spurious_nj,
                        e.missed_forgone_nj,
                    )
                })
                .filter(|(_, p, lg, s, m)| *p + *lg + s.total() + m.total() > 0)
                .collect()
        }
        wake_rows(self) == wake_rows(other)
    }

    /// Renders the fleet-wide totals as one line of integer-only JSON —
    /// the `"energy"` section of the `hide-metrics/1` artifact. Keys
    /// appear in fixed order, so the output is deterministic.
    #[must_use]
    pub fn to_metrics_section(&self) -> String {
        // `totals().spent_nj()` equals the row-wise `spent_nj()` sum
        // exactly: both are the same `u64` additions reassociated.
        metrics_section_for(&self.totals(), self.len())
    }

    /// Renders the per-client rows as CSV (header + one line per lane),
    /// sorted by `(source, aid)`. Deterministic byte-for-byte.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 + self.rows.len() * 96);
        out.push_str(ATTRIBUTION_CSV_HEADER);
        for (key, e) in &self.rows {
            write_csv_row(&mut out, *key, e);
        }
        out
    }

    /// Renders the per-client rows as JSON Lines with full per-cause
    /// detail, sorted by `(source, aid)`. Deterministic byte-for-byte.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.rows.len() * 256);
        for (key, e) in &self.rows {
            write_jsonl_row(&mut out, *key, e);
        }
        out
    }
}

/// Header line of the attribution CSV export (trailing newline
/// included).
pub const ATTRIBUTION_CSV_HEADER: &str =
    "source,aid,proper_nj,legacy_nj,spurious_nj,missed_forgone_nj,\
     beacon_nj,burst_rx_nj,refresh_tx_nj,spent_nj\n";

/// Renders one attribution CSV row (trailing newline included) — the
/// shared renderer behind [`AttributionLedger::to_csv`] and the
/// streamed export lane, so both paths emit identical bytes per row.
pub fn write_csv_row(out: &mut String, (source, aid): ClientKey, e: &ClientEnergy) {
    let _ = writeln!(
        out,
        "{source},{aid},{},{},{},{},{},{},{},{}",
        e.proper_nj,
        e.legacy_nj,
        e.spurious_nj.total(),
        e.missed_forgone_nj.total(),
        e.beacon_nj,
        e.burst_rx_nj,
        e.refresh_tx_nj,
        e.spent_nj()
    );
}

/// Renders one attribution JSONL row (trailing newline included) — the
/// shared renderer behind [`AttributionLedger::to_jsonl`] and the
/// streamed export lane.
pub fn write_jsonl_row(out: &mut String, (source, aid): ClientKey, e: &ClientEnergy) {
    let _ = writeln!(
        out,
        "{{\"source\":{source},\"aid\":{aid},\"proper_nj\":{},\"legacy_nj\":{},\
         \"spurious\":{{\"refresh_lost\":{},\"entry_expired\":{},\"port_churn\":{},\
         \"unknown\":{}}},\"missed_forgone\":{{\"refresh_lost\":{},\
         \"entry_expired\":{},\"port_churn\":{},\"unknown\":{}}},\"beacon_nj\":{},\
         \"burst_rx_nj\":{},\"refresh_tx_nj\":{},\"spent_nj\":{}}}",
        e.proper_nj,
        e.legacy_nj,
        e.spurious_nj.refresh_lost,
        e.spurious_nj.entry_expired,
        e.spurious_nj.port_churn,
        e.spurious_nj.unknown,
        e.missed_forgone_nj.refresh_lost,
        e.missed_forgone_nj.entry_expired,
        e.missed_forgone_nj.port_churn,
        e.missed_forgone_nj.unknown,
        e.beacon_nj,
        e.burst_rx_nj,
        e.refresh_tx_nj,
        e.spent_nj()
    );
}

/// Renders the `"energy"` metrics section from already-accumulated
/// totals and a lane count — the streamed fleet path accumulates
/// `ClientEnergy` totals shard by shard (exact `u64` addition) instead
/// of materializing the fleet-wide ledger, then renders through the
/// same formatter as [`AttributionLedger::to_metrics_section`].
#[must_use]
pub fn metrics_section_for(t: &ClientEnergy, clients: usize) -> String {
    format!(
        "{{\"clients\": {}, \"proper_wake_nj\": {}, \"legacy_wake_nj\": {}, \
         \"spurious_wake_nj\": {}, \"spurious_refresh_lost_nj\": {}, \
         \"spurious_entry_expired_nj\": {}, \"spurious_port_churn_nj\": {}, \
         \"spurious_unknown_nj\": {}, \"missed_forgone_nj\": {}, \
         \"missed_refresh_lost_nj\": {}, \"missed_entry_expired_nj\": {}, \
         \"missed_port_churn_nj\": {}, \"missed_unknown_nj\": {}, \
         \"beacon_nj\": {}, \"burst_rx_nj\": {}, \"refresh_tx_nj\": {}, \
         \"spent_nj\": {}}}",
        clients,
        t.proper_nj,
        t.legacy_nj,
        t.spurious_nj.total(),
        t.spurious_nj.refresh_lost,
        t.spurious_nj.entry_expired,
        t.spurious_nj.port_churn,
        t.spurious_nj.unknown,
        t.missed_forgone_nj.total(),
        t.missed_forgone_nj.refresh_lost,
        t.missed_forgone_nj.entry_expired,
        t.missed_forgone_nj.port_churn,
        t.missed_forgone_nj.unknown,
        t.beacon_nj,
        t.burst_rx_nj,
        t.refresh_tx_nj,
        t.spent_nj(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{GALAXY_S4, NEXUS_ONE};

    #[test]
    fn pricing_matches_profile_arithmetic() {
        let p = WakePricing::from_profile(&NEXUS_ONE);
        // E_rm + E_sp + τ·P_sa = 35.92 mJ + 1 s × 125 mW = 160.92 mJ.
        assert_eq!(p.wake_nj, 160_920_000);
        // Suspend floor over T_rm + τ + T_sp = 1.132 s at 11 mW.
        assert_eq!(p.forgone_nj, 160_920_000 - 12_452_000);
        assert_eq!(p.beacon_nj, 1_250_000);
        // The S4's wake cycle is far more expensive (Table I).
        let s4 = WakePricing::from_profile(&GALAXY_S4);
        assert!(s4.wake_nj > 250_000_000);
        assert!(s4.forgone_nj < s4.wake_nj);
    }

    #[test]
    fn charge_wake_routes_by_class_and_cause() {
        let pricing = WakePricing::from_profile(&NEXUS_ONE);
        let mut e = ClientEnergy::default();
        e.charge_wake(WakeClass::Proper, WakeCause::Proper, &pricing);
        e.charge_wake(WakeClass::Legacy, WakeCause::Proper, &pricing);
        e.charge_wake(WakeClass::Spurious, WakeCause::PortChurn, &pricing);
        e.charge_wake(WakeClass::Missed, WakeCause::RefreshLost, &pricing);
        e.charge_wake(WakeClass::Missed, WakeCause::EntryExpired, &pricing);
        assert_eq!(e.proper_nj, pricing.wake_nj);
        assert_eq!(e.legacy_nj, pricing.wake_nj);
        assert_eq!(e.spurious_nj.port_churn, pricing.wake_nj);
        assert_eq!(e.missed_forgone_nj.refresh_lost, pricing.forgone_nj);
        assert_eq!(e.missed_forgone_nj.entry_expired, pricing.forgone_nj);
        // Missed energy is counterfactual: not part of spent.
        assert_eq!(e.spent_nj(), 3 * pricing.wake_nj);
    }

    #[test]
    fn ledger_entry_keeps_rows_sorted() {
        let mut l = AttributionLedger::new();
        l.entry((3, 1)).beacon_nj = 10;
        l.entry((0, 2)).beacon_nj = 20;
        l.entry((0, 1)).beacon_nj = 30;
        l.entry((0, 2)).beacon_nj += 5;
        let keys: Vec<ClientKey> = l.rows().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![(0, 1), (0, 2), (3, 1)]);
        assert_eq!(l.get((0, 2)).unwrap().beacon_nj, 25);
        assert_eq!(l.get((7, 7)), None);
        assert_eq!(l.totals().beacon_nj, 65);
        assert_eq!(l.spent_nj(), 65);
    }

    #[test]
    fn merge_interleaves_and_adds() {
        let mut a = AttributionLedger::new();
        a.entry((0, 1)).proper_nj = 100;
        a.entry((2, 9)).burst_rx_nj = 7;
        let mut b = AttributionLedger::new();
        b.entry((0, 1)).proper_nj = 50;
        b.entry((1, 4)).refresh_tx_nj = 3;

        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.len(), 3);
        assert_eq!(ab.get((0, 1)).unwrap().proper_nj, 150);
        assert_eq!(ab.spent_nj(), 160);
        let mut with_empty = ab.clone();
        with_empty.merge_from(&AttributionLedger::new());
        assert_eq!(with_empty, ab);
    }

    #[test]
    fn from_sorted_rows_equals_entry_built_ledger() {
        let mut by_entry = AttributionLedger::new();
        by_entry.entry((0, 1)).proper_nj = 10;
        by_entry.entry((0, 5)).beacon_nj = 20;
        let direct = AttributionLedger::from_sorted_rows(vec![
            (
                (0, 1),
                ClientEnergy {
                    proper_nj: 10,
                    ..ClientEnergy::default()
                },
            ),
            (
                (0, 5),
                ClientEnergy {
                    beacon_nj: 20,
                    ..ClientEnergy::default()
                },
            ),
        ]);
        assert_eq!(by_entry, direct);
    }

    #[test]
    fn disjoint_merge_appends_exactly_like_the_general_path() {
        // Shard-shaped ledgers: strictly increasing source lanes.
        let mut shard0 = AttributionLedger::new();
        shard0.entry((0, 1)).proper_nj = 1;
        shard0.entry((0, 7)).beacon_nj = 2;
        let mut shard1 = AttributionLedger::new();
        shard1.entry((1, 2)).legacy_nj = 3;
        let mut shard2 = AttributionLedger::new();
        shard2.entry((2, 1)).burst_rx_nj = 4;

        let mut folded = AttributionLedger::new();
        folded.merge_from(&shard0);
        folded.merge_from(&shard1);
        folded.merge_from(&shard2);

        // Reference: force the interleaving path by merging in an
        // order that defeats the append fast path.
        let mut reference = AttributionLedger::new();
        reference.merge_from(&shard2);
        reference.merge_from(&shard0);
        reference.merge_from(&shard1);
        assert_eq!(folded, reference);
        assert_eq!(folded.len(), 4);
    }

    #[test]
    fn price_equals_per_event_charging() {
        use hide_obs::trace::{FlightRecorder, TraceEventKind, TraceSink};

        // A trace with a mix of wake classes on two lanes.
        let mut fr = FlightRecorder::new();
        let wake = |aid: u16, class: WakeClass, cause: WakeCause| TraceEventKind::WakeDecision {
            aid,
            port: 80,
            frame_id: 1,
            class,
            cause,
        };
        fr.emit(0.1, wake(1, WakeClass::Proper, WakeCause::Proper));
        fr.emit(0.2, wake(1, WakeClass::Proper, WakeCause::Proper));
        fr.emit(0.3, wake(1, WakeClass::Missed, WakeCause::RefreshLost));
        fr.emit(0.4, wake(2, WakeClass::Spurious, WakeCause::PortChurn));
        fr.emit(0.5, wake(2, WakeClass::Legacy, WakeCause::Proper));

        let counts = hide_obs::provenance::per_client(&fr);
        let priced = AttributionLedger::price(&counts, &NEXUS_ONE);

        // Re-derive by charging each event individually.
        let pricing = WakePricing::from_profile(&NEXUS_ONE);
        let mut online = AttributionLedger::new();
        for e in fr.events() {
            if let TraceEventKind::WakeDecision {
                aid, class, cause, ..
            } = e.kind
            {
                online
                    .entry((e.source, aid))
                    .charge_wake(class, cause, &pricing);
            }
        }
        assert_eq!(priced, online);
        assert!(priced.wake_columns_eq(&online));
        assert_eq!(priced.get((0, 1)).unwrap().proper_nj, 2 * pricing.wake_nj);
    }

    #[test]
    fn wake_columns_eq_ignores_radio_columns() {
        let mut a = AttributionLedger::new();
        a.entry((0, 1)).proper_nj = 5;
        let mut b = a.clone();
        b.entry((0, 1)).beacon_nj = 999;
        b.entry((0, 2)).burst_rx_nj = 7; // radio-only lane: invisible to wakes
        assert!(a.wake_columns_eq(&b));
        b.entry((0, 2)).legacy_nj = 1;
        assert!(!a.wake_columns_eq(&b));
    }

    #[test]
    fn exports_are_deterministic_and_integer_only() {
        let mut l = AttributionLedger::new();
        l.entry((0, 1)).proper_nj = 160_920_000;
        l.entry((0, 1)).beacon_nj = 1_250_000;
        l.entry((1, 2)).missed_forgone_nj.refresh_lost = 148_468_000;

        let section = l.to_metrics_section();
        assert!(section.starts_with("{\"clients\": 2"));
        assert!(section.contains("\"missed_refresh_lost_nj\": 148468000"));
        assert!(section.contains("\"spent_nj\": 162170000"));
        assert!(!section.contains('.'), "section must stay integer-only");
        assert_eq!(section.matches('{').count(), section.matches('}').count());

        let csv = l.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("source,aid,"));
        assert_eq!(lines[1], "0,1,160920000,0,0,0,1250000,0,0,162170000");

        let jsonl = l.to_jsonl();
        assert_eq!(jsonl.lines().count(), 2);
        assert!(jsonl.contains("\"missed_forgone\":{\"refresh_lost\":148468000"));
        assert_eq!(l.to_csv(), l.clone().to_csv());
    }

    #[test]
    fn streamed_lane_renderers_match_ledger_exports() {
        // The streamed fleet path emits header + rows shard by shard and
        // accumulates totals instead of building the fleet ledger; both
        // must be byte-equal to the in-memory ledger exports.
        let mut l = AttributionLedger::new();
        l.entry((0, 1)).proper_nj = 160_920_000;
        l.entry((0, 3)).spurious_nj.port_churn = 321_840_000;
        l.entry((2, 1)).missed_forgone_nj.unknown = 148_468_000;
        l.entry((2, 1)).beacon_nj = 1_250_000;

        let mut csv = String::from(ATTRIBUTION_CSV_HEADER);
        let mut jsonl = String::new();
        let mut totals = ClientEnergy::default();
        let mut clients = 0usize;
        for (key, e) in l.rows() {
            write_csv_row(&mut csv, *key, e);
            write_jsonl_row(&mut jsonl, *key, e);
            totals.merge_from(e);
            clients += 1;
        }
        assert_eq!(csv, l.to_csv());
        assert_eq!(jsonl, l.to_jsonl());
        assert_eq!(
            metrics_section_for(&totals, clients),
            l.to_metrics_section()
        );
    }
}
