//! Literal transcription of the paper's closed-form state equations.
//!
//! For the uniform-wakelock case (every received frame holds the same
//! `τ`), Eqs. (3)–(5) and (14) define the wakelock start times `t_r(i)`,
//! active durations `t_wl(i)`, system states `s(i)` and aborted-suspend
//! fractions `y(i)` in closed form. This module computes them exactly as
//! written; the event-driven [`crate::machine`] is validated against it
//! in tests (and in `tests/closed_form_cross_check.rs`).

use crate::profile::DeviceProfile;

/// Per-frame state sequences of Eqs. (3)–(5) and (14).
#[derive(Debug, Clone, PartialEq)]
pub struct StateSequences {
    /// Wakelock start times `t_r(i)` (Eq. 3).
    pub wakelock_starts: Vec<f64>,
    /// Wakelock active durations `t_wl(i)` (Eq. 4).
    pub wakelock_durations: Vec<f64>,
    /// System state at each arrival: `s(i) = 0` suspended, `1` active /
    /// resuming / suspending (Eq. 5).
    pub states: Vec<u8>,
    /// Aborted-suspend fractions `y(i)` (Eq. 14); `y(1) = 0`.
    pub aborted_fractions: Vec<f64>,
}

impl StateSequences {
    /// `Σ t_wl(i)` — total wakelock-held time.
    pub fn total_wakelock_time(&self) -> f64 {
        self.wakelock_durations.iter().sum()
    }

    /// Number of frames that arrived in suspend mode (`Σ [1 − s(i)]`).
    pub fn suspend_arrivals(&self) -> u64 {
        self.states.iter().filter(|&&s| s == 0).count() as u64
    }

    /// `Σ y(i)` — total aborted-suspend fraction.
    pub fn total_aborted_fraction(&self) -> f64 {
        self.aborted_fractions.iter().sum()
    }

    /// `Ewl` per Eq. (12).
    pub fn wakelock_energy(&self, profile: &DeviceProfile) -> f64 {
        profile.active_idle_power * self.total_wakelock_time()
    }

    /// `Est` per Eq. (13).
    pub fn state_transfer_energy(&self, profile: &DeviceProfile) -> f64 {
        profile.wake_cycle_energy() * self.suspend_arrivals() as f64
            + profile.suspend_energy * self.total_aborted_fraction()
    }
}

/// Computes Eqs. (3)–(5) and (14) for frame arrival-completion times
/// `arrivals[i] = t_i + l_i / r_i` (must be sorted ascending) and a
/// uniform wakelock `τ` from the profile.
///
/// The paper assumes `s(1) = 0` (the device is suspended when the first
/// frame arrives); so does this function.
///
/// # Panics
///
/// Panics if `arrivals` is not sorted ascending — callers construct it
/// from a validated [`crate::timeline::Timeline`].
pub fn compute(profile: &DeviceProfile, arrivals: &[f64]) -> StateSequences {
    let n = arrivals.len();
    let tau = profile.wakelock_secs;
    let t_rm = profile.resume_secs;
    let t_sp = profile.suspend_secs;

    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrival times must be sorted"
    );

    let mut tr = vec![0.0f64; n];
    let mut s = vec![0u8; n];
    let mut y = vec![0.0f64; n];

    for i in 0..n {
        if i == 0 {
            s[0] = 0;
            tr[0] = arrivals[0] + t_rm;
            continue;
        }
        // Eq. (5): suspended iff the arrival is past the previous
        // wakelock's expiry plus a complete suspend operation.
        s[i] = if arrivals[i] >= tr[i - 1] + tau + t_sp {
            0
        } else {
            1
        };
        // Eq. (3).
        tr[i] = if s[i] == 0 {
            arrivals[i] + t_rm
        } else {
            arrivals[i].max(tr[i - 1])
        };
    }

    // Eq. (4): t_wl(i) = min(t_r(i+1) − t_r(i), τ); the final wakelock
    // runs its full course.
    let mut twl = vec![0.0f64; n];
    for i in 0..n {
        twl[i] = if i + 1 < n {
            (tr[i + 1] - tr[i]).min(tau)
        } else {
            tau
        };
    }

    // Eq. (14): the fraction of a suspend operation completed before
    // frame i aborted it.
    for i in 1..n {
        y[i] = ((tr[i] - tr[i - 1] - twl[i - 1]).max(0.0) * s[i] as f64) / t_sp;
    }

    StateSequences {
        wakelock_starts: tr,
        wakelock_durations: twl,
        states: s,
        aborted_fractions: y,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{GALAXY_S4, NEXUS_ONE};

    #[test]
    fn empty_input() {
        let seq = compute(&NEXUS_ONE, &[]);
        assert_eq!(seq.total_wakelock_time(), 0.0);
        assert_eq!(seq.suspend_arrivals(), 0);
    }

    #[test]
    fn first_frame_is_suspend_arrival() {
        let seq = compute(&NEXUS_ONE, &[5.0]);
        assert_eq!(seq.states, vec![0]);
        assert!((seq.wakelock_starts[0] - 5.046).abs() < 1e-12);
        assert_eq!(seq.wakelock_durations, vec![1.0]);
        assert_eq!(seq.aborted_fractions, vec![0.0]);
    }

    #[test]
    fn renewal_shortens_previous_wakelock() {
        // Frames 0.4 s apart: the first wakelock activates at 5.046
        // (after the resume) and runs only until the renewal at 5.4
        // (Eq. 4's min).
        let seq = compute(&NEXUS_ONE, &[5.0, 5.4]);
        assert_eq!(seq.states, vec![0, 1]);
        assert!((seq.wakelock_durations[0] - 0.354).abs() < 1e-12);
        assert_eq!(seq.wakelock_durations[1], 1.0);
        assert_eq!(seq.total_aborted_fraction(), 0.0);
    }

    #[test]
    fn far_apart_frames_are_independent_cycles() {
        let seq = compute(&NEXUS_ONE, &[5.0, 50.0, 100.0]);
        assert_eq!(seq.states, vec![0, 0, 0]);
        assert_eq!(seq.suspend_arrivals(), 3);
        assert_eq!(seq.total_wakelock_time(), 3.0);
    }

    #[test]
    fn abort_fraction_matches_manual_calculation() {
        // Wakelock expires at 5 + 0.046 + 1 = 6.046. Suspend completes at
        // 6.132. Frame at 6.1 aborts after (6.1-6.046)/0.086 of the op.
        let seq = compute(&NEXUS_ONE, &[5.0, 6.1]);
        assert_eq!(seq.states, vec![0, 1]);
        let y = (6.1 - 6.046) / 0.086;
        assert!((seq.aborted_fractions[1] - y).abs() < 1e-9);
    }

    #[test]
    fn energy_formulas_match_components() {
        let seq = compute(&NEXUS_ONE, &[5.0, 50.0]);
        let ewl = seq.wakelock_energy(&NEXUS_ONE);
        assert!((ewl - 0.125 * 2.0).abs() < 1e-12);
        let est = seq.state_transfer_energy(&NEXUS_ONE);
        assert!((est - 2.0 * NEXUS_ONE.wake_cycle_energy()).abs() < 1e-12);
    }

    #[test]
    fn s4_suspends_slower_so_aborts_span_longer() {
        // Same gap counts as an abort on the S4 (165 ms suspend) but a
        // completed suspend on the Nexus One (86 ms).
        let gap_after_expiry = 0.12;
        let expiry = 5.0 + NEXUS_ONE.resume_secs + 1.0;
        let arrivals = [5.0, expiry + gap_after_expiry];
        let nexus = compute(&NEXUS_ONE, &arrivals);
        assert_eq!(nexus.states[1], 0, "nexus one finished suspending");

        let expiry_s4 = 5.0 + GALAXY_S4.resume_secs + 1.0;
        let arrivals_s4 = [5.0, expiry_s4 + gap_after_expiry];
        let s4 = compute(&GALAXY_S4, &arrivals_s4);
        assert_eq!(s4.states[1], 1, "s4 still suspending");
        assert!(s4.aborted_fractions[1] > 0.0);
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn unsorted_arrivals_panic() {
        let _ = compute(&NEXUS_ONE, &[5.0, 1.0]);
    }
}
