//! Event-driven power-state machine.
//!
//! Generalizes Eqs. (3)–(5) and (12)–(14) of the paper to per-frame
//! wakelock durations. The machine walks the received frames in time
//! order and tracks the device through suspend / resume / active /
//! suspending phases:
//!
//! * a frame arriving in **suspend mode** triggers a resume operation
//!   (`T_rm`, `E_rm`) and — because the device must eventually suspend
//!   again — a full suspend operation's energy (`E_sp`) is charged for
//!   the session (Eq. 13's `(E_rm + E_sp)·Σ[1 − s(i)]` term);
//! * a frame arriving **during a suspend operation** aborts it; the
//!   wasted partial energy `E_sp · y(i)` is charged (Eq. 14) and the
//!   suspend restarts after the new wakelock;
//! * a frame arriving **while a wakelock is active** renews it (Eq. 4);
//! * a frame arriving **during a resume operation** has its wakelock
//!   activation delayed to the end of the resume (Eq. 3's `max`).

use crate::fsm::{RadioState, TransitionTable};
use crate::profile::DeviceProfile;
use crate::timeline::Timeline;

/// Output of the power-state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MachineResult {
    /// `Ewl` — energy of active-idle time under wakelocks (Eq. 12), J.
    pub wakelock_energy: f64,
    /// `Est` — energy of suspend/resume transfers incl. aborts (Eq. 13), J.
    pub state_transfer_energy: f64,
    /// Total time wakelocks were held, seconds (clipped to the trace).
    pub wakelock_time: f64,
    /// Total time spent fully suspended, seconds.
    pub suspend_time: f64,
    /// Number of resume operations (frames with `s(i) = 0`).
    pub resume_count: u64,
    /// Number of aborted suspend operations.
    pub aborted_suspends: u64,
}

/// Runs the state machine over a timeline.
///
/// The device is assumed suspended at `t = 0` (the paper's
/// "without loss of generality, `s(1) = 0`"). Builds the profile's
/// [`TransitionTable`] and delegates to [`run_with_table`]: the table
/// stores the profile's constants verbatim, so this wrapper is
/// bit-identical to the flat-constant machine it replaced.
pub fn run(profile: &DeviceProfile, timeline: &Timeline) -> MachineResult {
    run_with_table(&TransitionTable::from_profile(profile), timeline)
}

/// Runs the state machine over a timeline against an explicit
/// transition table — per-state powers and transition prices come from
/// the table's edges (`Suspended → Resuming`, `ActiveIdle →
/// Suspending`), not from flat profile fields.
pub fn run_with_table(table: &TransitionTable, timeline: &Timeline) -> MachineResult {
    let t_rm = table.resume_secs();
    let t_sp = table.suspend_secs();
    let duration = timeline.duration();

    // `release`: expiry time of the furthest wakelock in the current wake
    // session; the suspend operation runs over [release, release + t_sp].
    // Starting suspended: model a virtual session that released at -t_sp.
    let mut release = -t_sp;
    // `last_tr`: activation time of the most recent wakelock (may be in
    // the future while a resume operation is in flight).
    let mut last_tr = f64::NEG_INFINITY;

    let mut wakelock_time = 0.0f64;
    let mut est = 0.0f64;
    let mut suspend_time = 0.0f64;
    let mut resume_count = 0u64;
    let mut aborted = 0u64;

    let mut prev_arrival = f64::NEG_INFINITY;
    for frame in timeline.frames() {
        // Fully-received time; clamp to keep arrivals monotone even if
        // airtimes overlap pathologically.
        let a = frame.end().max(prev_arrival);
        prev_arrival = a;
        let h = frame.hold;
        let suspend_complete = release + t_sp;

        if a >= suspend_complete {
            // s(i) = 0: device is suspended when the frame arrives.
            suspend_time += a - suspend_complete;
            est += table.wake_cycle_energy_j();
            resume_count += 1;
            let tr = a + t_rm;
            last_tr = tr;
            release = tr + h;
            wakelock_time += h;
        } else if a >= release {
            // Suspend operation in progress: abort it.
            let y = (a - release) / t_sp;
            est += table.suspend_energy_j() * y;
            aborted += 1;
            let tr = a.max(last_tr);
            last_tr = tr;
            let new_release = tr + h;
            if new_release > release {
                wakelock_time += new_release - release.max(tr);
                release = new_release;
            }
        } else {
            // Wakelock still active (or resume in flight): renew.
            let tr = a.max(last_tr);
            last_tr = tr;
            let new_release = tr + h;
            if new_release > release {
                wakelock_time += new_release - release;
                release = new_release;
            }
        }
    }

    // Trailing suspended time after the final session completes its
    // suspend, clipped to the trace duration.
    let final_suspend_complete = release + t_sp;
    if final_suspend_complete < duration {
        suspend_time += duration - final_suspend_complete;
    }
    // Clip wakelock time that extends past the trace end: the tail
    // [duration, release] of the final wakelock is contiguous held time.
    if release > duration {
        wakelock_time = (wakelock_time - (release - duration)).max(0.0);
    }

    MachineResult {
        wakelock_energy: table.power_w(RadioState::ActiveIdle) * wakelock_time,
        state_transfer_energy: est,
        wakelock_time,
        suspend_time: suspend_time.min(duration).max(0.0),
        resume_count,
        aborted_suspends: aborted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::NEXUS_ONE;
    use crate::timeline::{Timeline, TimelineFrame};

    fn frames(specs: &[(f64, f64)]) -> Vec<TimelineFrame> {
        specs
            .iter()
            .map(|&(start, hold)| TimelineFrame {
                start,
                airtime: 0.0,
                more_data: false,
                hold,
            })
            .collect()
    }

    fn run_on(duration: f64, specs: &[(f64, f64)]) -> MachineResult {
        let t = Timeline::new(duration, 0.1024, frames(specs)).unwrap();
        run(&NEXUS_ONE, &t)
    }

    #[test]
    fn empty_timeline_stays_suspended() {
        let r = run_on(100.0, &[]);
        assert_eq!(r.resume_count, 0);
        assert_eq!(r.wakelock_time, 0.0);
        assert_eq!(r.state_transfer_energy, 0.0);
        assert!((r.suspend_time - 100.0).abs() < NEXUS_ONE.suspend_secs + 1e-9);
    }

    #[test]
    fn single_frame_costs_one_wake_cycle() {
        let r = run_on(100.0, &[(10.0, 1.0)]);
        assert_eq!(r.resume_count, 1);
        assert_eq!(r.aborted_suspends, 0);
        assert!((r.state_transfer_energy - NEXUS_ONE.wake_cycle_energy()).abs() < 1e-12);
        assert!((r.wakelock_time - 1.0).abs() < 1e-12);
        // Suspended: [0, 10] plus [10 + Trm + 1 + Tsp, 100].
        let expected = 10.0 + (100.0 - (10.0 + 0.046 + 1.0 + 0.086));
        assert!((r.suspend_time - expected).abs() < 1e-9);
    }

    #[test]
    fn renewal_within_wakelock_extends_without_new_cycle() {
        // Second frame arrives 0.5 s after the first: one session, one
        // wake cycle, held from 10.046 (resume done) to 11.5.
        let r = run_on(100.0, &[(10.0, 1.0), (10.5, 1.0)]);
        assert_eq!(r.resume_count, 1);
        assert_eq!(r.aborted_suspends, 0);
        assert!((r.state_transfer_energy - NEXUS_ONE.wake_cycle_energy()).abs() < 1e-12);
        assert!((r.wakelock_time - (11.5 - 10.046)).abs() < 1e-12);
    }

    #[test]
    fn arrival_during_suspend_op_aborts_it() {
        // Wakelock expires at 10 + Trm + 1 = 11.046; suspend runs until
        // 11.132. A frame at 11.1 arrives mid-suspend.
        let r = run_on(100.0, &[(10.0, 1.0), (11.1, 1.0)]);
        assert_eq!(r.resume_count, 1);
        assert_eq!(r.aborted_suspends, 1);
        let y = (11.1 - 11.046) / NEXUS_ONE.suspend_secs;
        let expected = NEXUS_ONE.wake_cycle_energy() + NEXUS_ONE.suspend_energy * y;
        assert!(
            (r.state_transfer_energy - expected).abs() < 1e-9,
            "got {} expected {expected}",
            r.state_transfer_energy
        );
        // Held: [10.046, 11.046] and [11.1, 12.1].
        assert!((r.wakelock_time - 2.0).abs() < 1e-9);
    }

    #[test]
    fn arrival_after_suspend_completes_costs_second_cycle() {
        let r = run_on(100.0, &[(10.0, 1.0), (20.0, 1.0)]);
        assert_eq!(r.resume_count, 2);
        assert!((r.state_transfer_energy - 2.0 * NEXUS_ONE.wake_cycle_energy()).abs() < 1e-12);
        assert!((r.wakelock_time - 2.0).abs() < 1e-12);
    }

    #[test]
    fn arrival_during_resume_delays_activation() {
        // Frame at 10 resumes until 10.046; frame fully arriving at
        // 10.02 is during the resume: its wakelock activates at 10.046,
        // so the session still releases at 11.046 (not 11.02).
        let r = run_on(100.0, &[(10.0, 1.0), (10.02, 1.0)]);
        assert_eq!(r.resume_count, 1);
        assert!((r.wakelock_time - 1.0).abs() < 1e-9, "{}", r.wakelock_time);
    }

    #[test]
    fn zero_hold_frame_in_suspend_costs_cycle_but_no_wakelock() {
        // The "client-side" pattern: wake, drop, suspend immediately.
        let r = run_on(100.0, &[(10.0, 0.0)]);
        assert_eq!(r.resume_count, 1);
        assert_eq!(r.wakelock_time, 0.0);
        assert!((r.state_transfer_energy - NEXUS_ONE.wake_cycle_energy()).abs() < 1e-12);
        // Suspended except [10, 10 + Trm + Tsp].
        let expected = 100.0 - NEXUS_ONE.resume_secs - NEXUS_ONE.suspend_secs;
        assert!((r.suspend_time - expected).abs() < 1e-9);
    }

    #[test]
    fn zero_hold_during_active_wakelock_changes_nothing() {
        let with = run_on(100.0, &[(10.0, 1.0), (10.3, 0.0)]);
        let without = run_on(100.0, &[(10.0, 1.0)]);
        assert!((with.wakelock_time - without.wakelock_time).abs() < 1e-12);
        assert!((with.state_transfer_energy - without.state_transfer_energy).abs() < 1e-12);
    }

    #[test]
    fn zero_hold_burst_causes_abort_storm() {
        // Useless frames every 60 ms: each arrives inside the previous
        // 86 ms suspend op, aborting it over and over.
        let specs: Vec<(f64, f64)> = (0..10).map(|i| (10.0 + 0.06 * i as f64, 0.0)).collect();
        let r = run_on(100.0, &specs);
        assert_eq!(r.resume_count, 1);
        assert_eq!(r.aborted_suspends, 9);
        assert!(r.state_transfer_energy > NEXUS_ONE.wake_cycle_energy());
    }

    #[test]
    fn wakelock_clipped_at_trace_end() {
        let r = run_on(10.5, &[(10.0, 1.0)]);
        // Held [10.046, 11.046] but trace ends at 10.5.
        assert!((r.wakelock_time - (10.5 - 10.046)).abs() < 1e-9);
    }

    #[test]
    fn suspend_fraction_never_exceeds_one() {
        let specs: Vec<(f64, f64)> = (0..50).map(|i| (i as f64 * 0.2, 1.0)).collect();
        let r = run_on(10.0, &specs);
        assert!(r.suspend_time >= 0.0);
        assert!(r.suspend_time <= 10.0);
    }

    #[test]
    fn table_and_profile_paths_bit_identical() {
        // run() now routes through the FSM transition table; the table
        // stores the profile constants verbatim, so both entry points
        // produce bit-identical results.
        let specs: Vec<(f64, f64)> = (0..30)
            .map(|i| (i as f64 * 0.35, if i % 3 == 0 { 0.0 } else { 1.0 }))
            .collect();
        let t = Timeline::new(20.0, 0.1024, frames(&specs)).unwrap();
        let via_profile = run(&NEXUS_ONE, &t);
        let table = TransitionTable::from_profile(&NEXUS_ONE);
        let via_table = run_with_table(&table, &t);
        assert_eq!(via_profile, via_table);
    }

    #[test]
    fn heavier_traffic_means_less_suspend_time() {
        let light: Vec<(f64, f64)> = (0..10).map(|i| (i as f64 * 10.0, 1.0)).collect();
        let heavy: Vec<(f64, f64)> = (0..100).map(|i| (i as f64 * 1.0, 1.0)).collect();
        let rl = run_on(100.0, &light);
        let rh = run_on(100.0, &heavy);
        assert!(rh.suspend_time < rl.suspend_time);
        assert!(rh.wakelock_energy > rl.wakelock_energy);
    }
}
