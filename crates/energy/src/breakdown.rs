//! Energy accounting: the five-component breakdown of Eq. (2) and the
//! derived metrics the paper's figures report.

use std::fmt;
use std::ops::Add;

/// The five components of Eq. (2), in joules.
///
/// # Example
///
/// ```
/// use hide_energy::breakdown::EnergyBreakdown;
///
/// let b = EnergyBreakdown {
///     beacon: 1.0,
///     frames: 2.0,
///     wakelock: 3.0,
///     state_transfer: 4.0,
///     overhead: 0.5,
/// };
/// assert_eq!(b.total(), 10.5);
/// assert_eq!(b.average_power(21.0), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// `Eb` — beacon reception.
    pub beacon: f64,
    /// `Ef` — broadcast data frame reception (incl. idle listening).
    pub frames: f64,
    /// `Ewl` — system active-idle under wakelocks.
    pub wakelock: f64,
    /// `Est` — suspend/resume state transfers.
    pub state_transfer: f64,
    /// `Eo` — HIDE protocol overhead.
    pub overhead: f64,
}

impl EnergyBreakdown {
    /// Total energy `E` of Eq. (2), joules.
    pub fn total(&self) -> f64 {
        self.beacon + self.frames + self.wakelock + self.state_transfer + self.overhead
    }

    /// Average power over `duration` seconds, in watts — the metric
    /// Figs. 7 and 8 plot (they use milliwatts).
    pub fn average_power(&self, duration: f64) -> f64 {
        self.total() / duration
    }

    /// Each component as average power in milliwatts, in the order the
    /// figures stack them: `[Eb, Ef, Est, Ewl, Eo] / T`.
    pub fn stacked_milliwatts(&self, duration: f64) -> [f64; 5] {
        let to_mw = |e: f64| e / duration * 1e3;
        [
            to_mw(self.beacon),
            to_mw(self.frames),
            to_mw(self.state_transfer),
            to_mw(self.wakelock),
            to_mw(self.overhead),
        ]
    }
}

impl Add for EnergyBreakdown {
    type Output = EnergyBreakdown;

    fn add(self, rhs: EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            beacon: self.beacon + rhs.beacon,
            frames: self.frames + rhs.frames,
            wakelock: self.wakelock + rhs.wakelock,
            state_transfer: self.state_transfer + rhs.state_transfer,
            overhead: self.overhead + rhs.overhead,
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Eb={:.3}J Ef={:.3}J Est={:.3}J Ewl={:.3}J Eo={:.3}J (total {:.3}J)",
            self.beacon,
            self.frames,
            self.state_transfer,
            self.wakelock,
            self.overhead,
            self.total()
        )
    }
}

/// Full evaluation result: energy plus the state statistics behind
/// Fig. 9.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// The five-component energy breakdown.
    pub breakdown: EnergyBreakdown,
    /// Trace duration, seconds.
    pub duration: f64,
    /// Time spent fully suspended, seconds.
    pub suspend_time: f64,
    /// Number of resume operations.
    pub resume_count: u64,
    /// Number of aborted suspend operations.
    pub aborted_suspends: u64,
    /// Baseline energy of sitting in suspend mode (`P_ss ·
    /// suspend_time`), reported separately because Eq. (2) excludes it.
    pub suspend_floor_energy: f64,
}

impl EnergyReport {
    /// Fraction of the trace spent in suspend mode — the y-axis of
    /// Fig. 9.
    pub fn suspend_fraction(&self) -> f64 {
        self.suspend_time / self.duration
    }

    /// Average power in watts (Eq. 2 total over duration).
    pub fn average_power(&self) -> f64 {
        self.breakdown.average_power(self.duration)
    }

    /// Average power in milliwatts — the unit of Figs. 7 and 8.
    pub fn average_power_mw(&self) -> f64 {
        self.average_power() * 1e3
    }

    /// Energy saving of this report relative to `baseline`, as a
    /// fraction in `[−∞, 1]`: `1 − E_self / E_baseline`.
    pub fn saving_vs(&self, baseline: &EnergyReport) -> f64 {
        1.0 - self.breakdown.total() / baseline.breakdown.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(total_each: f64) -> EnergyReport {
        EnergyReport {
            breakdown: EnergyBreakdown {
                beacon: total_each,
                frames: total_each,
                wakelock: total_each,
                state_transfer: total_each,
                overhead: total_each,
            },
            duration: 10.0,
            suspend_time: 8.0,
            resume_count: 3,
            aborted_suspends: 1,
            suspend_floor_energy: 0.1,
        }
    }

    #[test]
    fn total_sums_components() {
        assert_eq!(report(1.0).breakdown.total(), 5.0);
    }

    #[test]
    fn average_power_divides_by_duration() {
        let r = report(2.0);
        assert_eq!(r.average_power(), 1.0);
        assert_eq!(r.average_power_mw(), 1000.0);
    }

    #[test]
    fn suspend_fraction() {
        assert!((report(1.0).suspend_fraction() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn saving_vs_baseline() {
        let cheap = report(1.0);
        let expensive = report(4.0);
        assert!((cheap.saving_vs(&expensive) - 0.75).abs() < 1e-12);
        assert_eq!(expensive.saving_vs(&expensive), 0.0);
    }

    #[test]
    fn stacked_order_matches_figures() {
        let b = EnergyBreakdown {
            beacon: 1.0,
            frames: 2.0,
            wakelock: 4.0,
            state_transfer: 3.0,
            overhead: 5.0,
        };
        // Fig. 7 legend order: Eb, Ef, Est, Ewl, Eo.
        assert_eq!(b.stacked_milliwatts(1.0), [1e3, 2e3, 3e3, 4e3, 5e3]);
    }

    #[test]
    fn add_is_componentwise() {
        let b = EnergyBreakdown {
            beacon: 1.0,
            frames: 2.0,
            wakelock: 3.0,
            state_transfer: 4.0,
            overhead: 5.0,
        };
        let sum = b + b;
        assert_eq!(sum.total(), 30.0);
        assert_eq!(sum.overhead, 10.0);
    }

    #[test]
    fn display_is_nonempty() {
        let s = report(1.0).breakdown.to_string();
        assert!(s.contains("total"));
    }
}
