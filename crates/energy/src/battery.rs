//! Battery-life projections.
//!
//! The paper motivates HIDE with battery drain; this module turns the
//! model's average-power outputs into standby-time estimates so the
//! examples and reports can answer the question users actually ask:
//! *how much longer does my phone last?*

/// A battery, described by its usable energy.
///
/// # Example
///
/// ```
/// use hide_energy::battery::Battery;
///
/// let battery = Battery::from_mah(2600.0, 3.8);
/// // A phone idling at 100 mW lasts ~99 hours on a 9.88 Wh pack.
/// let hours = battery.standby_hours(0.100);
/// assert!((hours - 98.8).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Battery {
    capacity_wh: f64,
}

impl Battery {
    /// The Nexus One's 1400 mAh battery at 3.7 V nominal.
    pub const NEXUS_ONE: Battery = Battery { capacity_wh: 5.18 };

    /// The Galaxy S4's 2600 mAh battery at 3.8 V nominal.
    pub const GALAXY_S4: Battery = Battery { capacity_wh: 9.88 };

    /// Creates a battery from its usable energy in watt-hours.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_wh` is not positive.
    pub fn from_wh(capacity_wh: f64) -> Self {
        assert!(capacity_wh > 0.0, "capacity must be positive");
        Battery { capacity_wh }
    }

    /// Creates a battery from a milliamp-hour rating and nominal
    /// voltage.
    ///
    /// # Panics
    ///
    /// Panics if either argument is not positive.
    pub fn from_mah(mah: f64, volts: f64) -> Self {
        assert!(mah > 0.0 && volts > 0.0, "rating must be positive");
        Battery {
            capacity_wh: mah * volts / 1000.0,
        }
    }

    /// Usable energy in watt-hours.
    pub fn capacity_wh(&self) -> f64 {
        self.capacity_wh
    }

    /// Hours of standby at a constant draw of `watts`.
    ///
    /// # Panics
    ///
    /// Panics if `watts` is not positive.
    pub fn standby_hours(&self, watts: f64) -> f64 {
        assert!(watts > 0.0, "draw must be positive");
        self.capacity_wh / watts
    }

    /// Days of standby at a constant draw of `watts`.
    pub fn standby_days(&self, watts: f64) -> f64 {
        self.standby_hours(watts) / 24.0
    }

    /// The battery-life multiplier of drawing `improved` watts instead
    /// of `baseline` watts (> 1 means longer life).
    ///
    /// # Panics
    ///
    /// Panics if either draw is not positive.
    pub fn life_extension(&self, baseline_watts: f64, improved_watts: f64) -> f64 {
        self.standby_hours(improved_watts) / self.standby_hours(baseline_watts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let b = Battery::from_mah(1000.0, 3.7);
        assert!((b.capacity_wh() - 3.7).abs() < 1e-12);
        assert_eq!(Battery::from_wh(5.0).capacity_wh(), 5.0);
    }

    #[test]
    fn standby_math() {
        let b = Battery::from_wh(10.0);
        assert!((b.standby_hours(1.0) - 10.0).abs() < 1e-12);
        assert!((b.standby_days(1.0) - 10.0 / 24.0).abs() < 1e-12);
    }

    #[test]
    fn extension_is_power_ratio() {
        let b = Battery::GALAXY_S4;
        assert!((b.life_extension(0.2, 0.1) - 2.0).abs() < 1e-12);
        assert!((b.life_extension(0.1, 0.1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn device_batteries_ordered() {
        assert!(Battery::GALAXY_S4.capacity_wh() > Battery::NEXUS_ONE.capacity_wh());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Battery::from_wh(0.0);
    }

    #[test]
    #[should_panic(expected = "draw")]
    fn zero_draw_panics() {
        let _ = Battery::from_wh(1.0).standby_hours(0.0);
    }
}
