//! Smartphone energy model from Section IV of the HIDE paper.
//!
//! The model computes the energy a smartphone spends handling WiFi
//! broadcast traffic, split into the five components of Eq. (2):
//!
//! ```text
//! E = Eb + Ef + Ewl + Est + Eo
//! ```
//!
//! * `Eb` — receiving beacon frames (Eq. 6),
//! * `Ef` — receiving broadcast data frames, including idle listening
//!   driven by the *More Data* bit (Eqs. 7–11),
//! * `Ewl` — system-active idle time under WiFi wakelocks (Eq. 12),
//! * `Est` — suspend/resume state transfers, including aborted suspend
//!   operations (Eqs. 13–14),
//! * `Eo` — HIDE's own overhead: BTIM bytes in beacons and UDP Port
//!   Message transmissions (Eqs. 15–19).
//!
//! Two implementations are provided and cross-checked against each other
//! in tests:
//!
//! * [`machine`] — an event-driven power-state machine that generalizes
//!   the paper's equations to per-frame wakelock durations (needed for
//!   the "client-side" baseline, which holds a zero-length wakelock for
//!   useless frames), and
//! * [`closed_form`] — a literal transcription of Eqs. (3)–(5) and (14)
//!   for the uniform-wakelock case.
//!
//! # Example
//!
//! ```
//! use hide_energy::profile::NEXUS_ONE;
//! use hide_energy::timeline::{Overhead, Timeline, TimelineFrame};
//!
//! // Two broadcast frames, 5 s apart, each holding a 1 s wakelock.
//! let frames = vec![
//!     TimelineFrame { start: 1.0, airtime: 0.002, more_data: false, hold: 1.0 },
//!     TimelineFrame { start: 6.0, airtime: 0.002, more_data: false, hold: 1.0 },
//! ];
//! let timeline = Timeline::new(10.0, 0.1024, frames)?;
//! let report = hide_energy::evaluate(&NEXUS_ONE, &timeline, &Overhead::NONE);
//! assert!(report.breakdown.total() > 0.0);
//! assert!(report.suspend_fraction() > 0.5);
//! # Ok::<(), hide_energy::EnergyError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod battery;
pub mod breakdown;
pub mod closed_form;
pub mod fsm;
pub mod machine;
pub mod profile;
pub mod radio;
pub mod timeline;

pub use attribution::{
    metrics_section_for, write_csv_row, write_jsonl_row, AttributionLedger, CauseEnergy,
    ClientEnergy, WakePricing, ATTRIBUTION_CSV_HEADER,
};
pub use breakdown::{EnergyBreakdown, EnergyReport};
pub use fsm::{RadioState, Transition, TransitionTable};
pub use profile::{DeviceProfile, DeviceProfileBuilder};
pub use timeline::{EnergyError, Overhead, Timeline, TimelineFrame};

/// Evaluates the full Section-IV energy model on a reception timeline.
///
/// Combines the radio model (`Eb`, `Ef`), the power-state machine
/// (`Ewl`, `Est`, suspend-time accounting) and the protocol overhead
/// (`Eo`) into one [`EnergyReport`].
pub fn evaluate(profile: &DeviceProfile, timeline: &Timeline, overhead: &Overhead) -> EnergyReport {
    evaluate_observed(profile, timeline, overhead, &mut hide_obs::NoopSink)
}

/// [`evaluate`] with instrumentation: counts the evaluation itself, the
/// timeline frames and beacon intervals the model covered, and the
/// resume/aborted-suspend transitions the state machine took. The
/// uninstrumented [`evaluate`] delegates here with a
/// [`hide_obs::NoopSink`], so both compile to the same code.
pub fn evaluate_observed<S: hide_obs::MetricsSink>(
    profile: &DeviceProfile,
    timeline: &Timeline,
    overhead: &Overhead,
    sink: &mut S,
) -> EnergyReport {
    use hide_obs::{Counter, Distribution};

    let radio = radio::evaluate_radio(profile, timeline);
    let machine = machine::run(profile, timeline);
    let eo = overhead.energy(profile);
    sink.incr(Counter::EnergyEvals);
    sink.add(Counter::TimelineFrames, timeline.frames().len() as u64);
    sink.add(Counter::BeaconsModeled, timeline.beacon_count());
    sink.add(Counter::Resumes, machine.resume_count);
    sink.add(Counter::AbortedSuspends, machine.aborted_suspends);
    sink.observe(Distribution::ResumesPerRun, machine.resume_count);
    EnergyReport {
        breakdown: EnergyBreakdown {
            beacon: radio.beacon_energy,
            frames: radio.frame_energy,
            wakelock: machine.wakelock_energy,
            state_transfer: machine.state_transfer_energy,
            overhead: eo,
        },
        duration: timeline.duration(),
        suspend_time: machine.suspend_time,
        resume_count: machine.resume_count,
        aborted_suspends: machine.aborted_suspends,
        suspend_floor_energy: profile.suspend_power * machine.suspend_time,
    }
}
