//! A protocol-level walkthrough: one HIDE phone and one legacy laptop
//! in a coffee shop, beacon by beacon.
//!
//! Shows the Fig. 2 message sequence in action — port sync, ACK, DTIM
//! beacons with BTIM elements — and how the phone sleeps through the
//! printer-discovery chatter that forces the legacy laptop awake.
//!
//! ```text
//! cargo run --release --example coffee_shop
//! ```

use hide::protocol::ap::{AccessPoint, ApCtx};
use hide::protocol::client::{HideClient, LegacyClient, OpenPortRegistry, WakeDecision};
use hide::wifi::frame::{Beacon, BroadcastDataFrame};
use hide::wifi::mac::MacAddr;
use hide::wifi::udp::UdpDatagram;

fn broadcast(ap: &AccessPoint, dst_port: u16, label: &str) -> BroadcastDataFrame {
    println!("  [lan] broadcast arrives: {label} (udp port {dst_port})");
    BroadcastDataFrame::new(
        ap.bssid(),
        UdpDatagram::new([192, 168, 1, 50], [255; 4], 4000, dst_port, vec![0; 120]),
        false,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ap = AccessPoint::new(MacAddr::new([2, 0, 0, 0, 0, 0xAA]));
    ap.set_ssid("corner-cafe");
    println!(
        "access point {} ('{}') up, DTIM period 1\n",
        ap.bssid(),
        ap.ssid()
    );

    // The phone runs Spotify (57621) and an mDNS responder (5353).
    let mut ports = OpenPortRegistry::new();
    ports.bind(5353, [0, 0, 0, 0])?;
    ports.bind(57621, [0, 0, 0, 0])?;
    let mut phone = HideClient::new(MacAddr::station(1), ports);

    // Association happens over the air, HIDE capability included.
    let request = phone.association_request(ap.bssid(), ap.ssid().to_string());
    let response = ap.handle_association_request(&hide::wifi::assoc::AssociationRequest::parse(
        &request.to_bytes(),
    )?);
    let aid = phone.handle_association_response(&hide::wifi::assoc::AssociationResponse::parse(
        &response.to_bytes(),
    )?)?;
    println!("phone associated as {aid} (HIDE capability declared in the request)");

    // A legacy laptop that follows the stock 802.11 DTIM rules.
    let mut laptop = LegacyClient::new(MacAddr::station(2));
    laptop.set_aid(ap.associate(laptop.mac())?);
    println!(
        "laptop associated as {} (legacy)\n",
        ap.aid_of(laptop.mac()).unwrap()
    );

    // Fig. 2 steps 1-3: sync ports, get the ACK, suspend.
    let msg = phone.prepare_suspend()?;
    println!(
        "phone -> ap: UDP Port Message, {} ports {:?} ({} bytes on air)",
        msg.ports().len(),
        msg.ports(),
        msg.len_bytes()
    );
    let ack = ap.process_port_message(&msg, &mut ApCtx::untimed())?;
    phone.handle_ack(&ack)?;
    println!("ap -> phone: ACK; phone enters suspend mode\n");

    // Three DTIM cycles with different traffic.
    let cycles: [(&str, Vec<(u16, &str)>); 3] = [
        (
            "printer discovery storm",
            vec![
                (1900, "SSDP M-SEARCH"),
                (1900, "SSDP NOTIFY"),
                (137, "NetBIOS name query"),
            ],
        ),
        ("quiet interval", vec![]),
        (
            "music sync",
            vec![(57621, "Spotify Connect announce"), (1900, "SSDP NOTIFY")],
        ),
    ];

    for (i, (title, frames)) in cycles.into_iter().enumerate() {
        println!("--- DTIM cycle {i}: {title} ---");
        for (port, label) in frames {
            let frame = broadcast(&ap, port, label);
            ap.enqueue_broadcast(frame);
        }
        // The beacon crosses the air as real bytes.
        let beacon_bytes = ap.dtim_beacon(i as u64).to_bytes();
        let beacon = Beacon::parse(&beacon_bytes)?;
        println!(
            "  [air] beacon: {} bytes, broadcast buffered = {}",
            beacon_bytes.len(),
            beacon.tim().unwrap().broadcast_buffered()
        );

        let phone_decision = phone.handle_beacon(&beacon)?;
        let laptop_decision = laptop.handle_beacon(&beacon)?;
        println!("  phone  (HIDE):   {phone_decision:?}");
        println!("  laptop (legacy): {laptop_decision:?}");

        let delivered = ap.deliver_broadcasts();
        if phone_decision == WakeDecision::WakeForBroadcast {
            let consumed = delivered.iter().filter(|f| phone.consumes(f)).count();
            println!(
                "  phone wakes, receives {} frame(s), {} consumed by apps",
                delivered.len(),
                consumed
            );
            phone.resume();
            let msg = phone.prepare_suspend()?;
            let ack = ap.process_port_message(&msg, &mut ApCtx::untimed())?;
            phone.handle_ack(&ack)?;
            println!("  phone re-syncs ports and suspends again");
        } else {
            println!("  phone stays suspended (0 J spent)");
        }
        println!();
    }

    println!(
        "total UDP Port Messages sent by phone: {}",
        phone.port_messages_sent()
    );
    Ok(())
}
