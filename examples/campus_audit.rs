//! Campus energy audit: how much battery would HIDE save across every
//! venue, for both phones of Table I?
//!
//! Sweeps all five scenarios and both device profiles, then prints a
//! deployment-style report: savings at 10% and 2% useful traffic, time
//! in suspend mode, and the estimated battery-life extension.
//!
//! ```text
//! cargo run --release --example campus_audit
//! ```

use hide::energy::battery::Battery;
use hide::energy::profile::ALL_PROFILES;
use hide::prelude::*;

fn main() {
    let duration = 900.0; // 15-minute sample per venue
    let traces: Vec<Trace> = Scenario::ALL
        .iter()
        .map(|s| s.generate(duration, 7))
        .collect();

    for profile in ALL_PROFILES {
        let battery = if profile.name == "Galaxy S4" {
            Battery::GALAXY_S4
        } else {
            Battery::NEXUS_ONE
        };
        println!("================ {} ================", profile.name);
        println!(
            "{:<12} {:>9} {:>9} {:>9} {:>8} {:>8} {:>11}",
            "venue", "recv-all", "HIDE:10%", "HIDE:2%", "sav 10%", "sav 2%", "standby x"
        );
        for trace in &traces {
            let all = SimulationBuilder::new(trace, profile).run();
            let hide10 = SimulationBuilder::new(trace, profile)
                .solution(Solution::hide(0.10))
                .run();
            let hide2 = SimulationBuilder::new(trace, profile)
                .solution(Solution::hide(0.02))
                .run();

            // Standby life handling broadcast traffic: battery over
            // (broadcast power + suspend floor).
            let floor = profile.suspend_power;
            let ext = battery.life_extension(
                all.energy.average_power() + floor,
                hide10.energy.average_power() + floor,
            );

            println!(
                "{:<12} {:>6.1} mW {:>6.1} mW {:>6.1} mW {:>7.0}% {:>7.0}% {:>10.1}x",
                trace.scenario,
                all.energy.average_power_mw(),
                hide10.energy.average_power_mw(),
                hide2.energy.average_power_mw(),
                hide10.energy.saving_vs(&all.energy) * 100.0,
                hide2.energy.saving_vs(&all.energy) * 100.0,
                ext,
            );
        }
        println!();
    }

    println!("suspend-mode time, Nexus One (cf. Fig. 9):");
    println!(
        "{:<12} {:>10} {:>11} {:>9} {:>8}",
        "venue", "recv-all", "client-side", "HIDE:10%", "HIDE:2%"
    );
    for trace in &traces {
        let frac = |s: Solution| {
            SimulationBuilder::new(trace, NEXUS_ONE)
                .solution(s)
                .run()
                .energy
                .suspend_fraction()
                * 100.0
        };
        println!(
            "{:<12} {:>9.1}% {:>10.1}% {:>8.1}% {:>7.1}%",
            trace.scenario,
            frac(Solution::ReceiveAll),
            frac(Solution::client_side_lower_bound()),
            frac(Solution::hide(0.10)),
            frac(Solution::hide(0.02)),
        );
    }
}
