//! A phone's full day at a campus café: hour-by-hour broadcast energy
//! with and without HIDE, and what it means for the battery.
//!
//! Uses the diurnal trace generator (24 hourly MMPP segments following
//! a venue activity curve) and the battery projections.
//!
//! ```text
//! cargo run --release --example day_in_the_life
//! ```

use hide::energy::battery::Battery;
use hide::prelude::*;
use hide::traces::generate::{self, GeneratorParams, PortMix};

fn main() {
    let params = GeneratorParams {
        idle_rate_fps: 2.0,
        burst_rate_fps: 16.0,
        mean_idle_secs: 20.0,
        mean_burst_secs: 6.0,
        port_mix: PortMix::cafe(),
    };
    let day = generate::diurnal("cafe", &params, 2026);
    println!(
        "one day at the café: {} broadcast frames ({:.2}/s average)\n",
        day.len(),
        day.mean_fps()
    );

    println!(
        "{:>6} {:>8} {:>12} {:>10} {:>10}",
        "hour", "frames", "receive-all", "HIDE:10%", "saving"
    );
    let mut energy_all = 0.0;
    let mut energy_hide = 0.0;
    for hour in 0..24usize {
        let slice = day.slice(hour as f64 * 3600.0, (hour + 1) as f64 * 3600.0);
        if slice.is_empty() {
            println!("{hour:>6} {:>8} {:>12} {:>10} {:>10}", 0, "-", "-", "-");
            continue;
        }
        let all = SimulationBuilder::new(&slice, NEXUS_ONE).run();
        let hide = SimulationBuilder::new(&slice, NEXUS_ONE)
            .solution(Solution::hide(0.10))
            .run();
        energy_all += all.energy.breakdown.total();
        energy_hide += hide.energy.breakdown.total();
        println!(
            "{hour:>6} {:>8} {:>9.1} mW {:>7.1} mW {:>9.0}%",
            slice.len(),
            all.energy.average_power_mw(),
            hide.energy.average_power_mw(),
            hide.energy.saving_vs(&all.energy) * 100.0,
        );
    }

    let battery = Battery::NEXUS_ONE;
    let day_secs = 86_400.0;
    let floor = NEXUS_ONE.suspend_power;
    let p_all = energy_all / day_secs + floor;
    let p_hide = energy_hide / day_secs + floor;
    println!("\nwhole-day broadcast handling:");
    println!(
        "  receive-all: {:.1} J  ({:.1}% of the {:.1} Wh battery per day)",
        energy_all,
        energy_all / 3600.0 / battery.capacity_wh() * 100.0,
        battery.capacity_wh(),
    );
    println!(
        "  HIDE:10%:    {:.1} J  ({:.1}% of battery per day)",
        energy_hide,
        energy_hide / 3600.0 / battery.capacity_wh() * 100.0,
    );
    println!(
        "  standby life (incl. suspend floor): {:.1} d -> {:.1} d ({:.2}x)",
        battery.standby_days(p_all),
        battery.standby_days(p_hide),
        battery.life_extension(p_all, p_hide),
    );
}
