//! Fleet study: a whole BSS of phones with partial HIDE adoption, plus
//! a robustness check under port churn and sync loss.
//!
//! Answers the questions a vendor would ask before shipping HIDE:
//! how does fleet energy scale with adoption, and how badly do lost
//! UDP Port Messages hurt when apps churn their ports?
//!
//! ```text
//! cargo run --release --example apartment_block
//! ```

use hide::prelude::*;
use hide::sim::network::{fleet, NetworkSimulation};
use hide::sim::reliability::{self, ReliabilityConfig};

fn main() {
    let trace = Scenario::Classroom.generate(600.0, 2024);
    println!(
        "shared medium: {} trace, {:.1} broadcast frames/s\n",
        trace.scenario,
        trace.mean_fps()
    );

    println!("fleet energy vs HIDE adoption (20 phones, Nexus One):");
    println!(
        "{:>10} {:>14} {:>14} {:>12} {:>14}",
        "adoption", "fleet power", "baseline", "saving", "port msgs/s"
    );
    for adoption in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let result = NetworkSimulation::new(&trace, NEXUS_ONE, fleet(20, adoption, 7)).run();
        println!(
            "{:>9.0}% {:>11.0} mW {:>11.0} mW {:>11.1}% {:>14.2}",
            adoption * 100.0,
            result.total_power_mw,
            result.baseline_power_mw,
            result.fleet_saving * 100.0,
            result.port_messages_per_sec,
        );
    }

    println!("\nper-client detail at 50% adoption:");
    let result = NetworkSimulation::new(&trace, NEXUS_ONE, fleet(20, 0.5, 7)).run();
    for c in result.clients.iter().take(6) {
        println!(
            "  {:<10} {:<12} useful {:>4.1}%  {:>6.1} mW  saving {:>5.1}%",
            c.spec.name,
            if c.spec.hide_enabled {
                "HIDE"
            } else {
                "legacy"
            },
            c.result.achieved_useful_fraction.unwrap_or(0.0) * 100.0,
            c.result.energy.average_power_mw(),
            c.saving * 100.0,
        );
    }
    println!("  ... ({} clients total)", result.clients.len());

    println!("\nrobustness: port churn every 2 min, varying sync loss:");
    println!(
        "{:>8} {:>14} {:>16} {:>16} {:>12}",
        "loss", "failed syncs", "missed useful", "spurious wakes", "stale time"
    );
    for loss in [0.0, 0.1, 0.3, 0.5, 0.9] {
        let cfg = ReliabilityConfig {
            loss_probability: loss,
            retries: 3,
            churn_interval_secs: 120.0,
            ..ReliabilityConfig::default()
        };
        let r = reliability::run(&trace, &cfg);
        println!(
            "{:>7.0}% {:>8}/{:<5} {:>15.3}% {:>15.3}% {:>11.1}%",
            loss * 100.0,
            r.syncs_failed,
            r.syncs_attempted,
            r.missed_useful_fraction * 100.0,
            r.spurious_wake_fraction * 100.0,
            r.stale_time_fraction * 100.0,
        );
    }
    println!(
        "\n(802.11 retransmission keeps the table fresh until loss rates\n\
         far beyond anything a working WLAN exhibits)"
    );
}
