//! Overhead planner: would enabling HIDE hurt your network?
//!
//! Given a deployment's node count, HIDE adoption fraction, port-sync
//! interval and open-port count, prints the expected network-capacity
//! decrease (Eqs. 20–24, Bianchi model) and round-trip-time increase
//! (Eqs. 25–27), like a capacity-planning worksheet.
//!
//! ```text
//! cargo run --release --example overhead_planner [nodes] [hide%] [interval_s] [ports]
//! ```

use hide::analysis::capacity::{CapacityAnalysis, NetworkConfig};
use hide::analysis::delay::{DelayAnalysis, DelayConfig};

fn arg<T: std::str::FromStr>(n: usize, default: T) -> T {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nodes: u32 = arg(1, 50);
    let hide_pct: f64 = arg(2, 50.0);
    let interval: f64 = arg(3, 10.0);
    let ports: u32 = arg(4, 50);

    println!("deployment: {nodes} stations, {hide_pct}% HIDE-enabled,");
    println!("port sync every {interval} s, {ports} open UDP ports per client\n");

    // --- capacity (Section V.A) ---
    let mut net = NetworkConfig::table_ii();
    net.sync_interval_secs = interval;
    net.ports_per_message = ports as usize;
    let capacity = CapacityAnalysis::new(net);
    let point = capacity.point(nodes, hide_pct / 100.0)?;
    println!("network capacity (802.11b, Table II parameters):");
    println!("  without HIDE: {:>8.3} Mbit/s", point.original_bps / 1e6);
    println!("  with HIDE:    {:>8.3} Mbit/s", point.with_hide_bps / 1e6);
    println!("  decrease:     {:>8.4} %\n", point.decrease * 100.0);

    // --- delay (Section V.B) ---
    let cfg = DelayConfig {
        hide_fraction: hide_pct / 100.0,
        sync_interval_secs: interval,
        open_ports: ports,
        ..DelayConfig::default()
    };
    let delay = DelayAnalysis::new(cfg).point(nodes);
    println!(
        "packet round-trip time (baseline {} ms):",
        cfg.rtt_secs * 1e3
    );
    println!(
        "  port-table refresh (t1): {:>8.1} us per RTT",
        delay.t1_secs * 1e6
    );
    println!(
        "  DTIM lookups (t2):       {:>8.1} us per RTT",
        delay.t2_secs * 1e6
    );
    println!(
        "  RTT increase:            {:>8.4} %\n",
        delay.overhead * 100.0
    );

    // --- the sweep a network admin would want to see ---
    println!("capacity decrease by adoption (this node count):");
    for p in [5.0, 25.0, 50.0, 75.0, 100.0] {
        let c = capacity.capacity_decrease(nodes, p / 100.0)?;
        println!("  {p:>3.0}% adoption: {:>7.4} %", c * 100.0);
    }
    println!("\nRTT increase by sync interval (this node count):");
    for i in [1.0, 10.0, 30.0, 60.0, 300.0, 600.0] {
        let mut c = cfg;
        c.sync_interval_secs = i;
        let d = DelayAnalysis::new(c).point(nodes);
        println!("  every {i:>4.0} s: {:>7.4} %", d.overhead * 100.0);
    }

    if point.decrease < 0.005 && delay.overhead < 0.03 {
        println!("\nverdict: HIDE overhead is negligible for this deployment.");
    } else {
        println!("\nverdict: consider a longer sync interval for this deployment.");
    }
    Ok(())
}
