//! Quickstart: generate a broadcast trace, run the three solutions on a
//! Nexus One, and print what HIDE saves.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hide::prelude::*;

fn main() {
    // 10 minutes of coffee-shop broadcast traffic, deterministic seed.
    let trace = Scenario::Starbucks.generate(600.0, 42);
    println!(
        "trace: {} ({:.0} s, {} broadcast frames, {:.1} frames/s)\n",
        trace.scenario,
        trace.duration,
        trace.len(),
        trace.mean_fps()
    );

    let solutions = [
        Solution::ReceiveAll,
        Solution::client_side_lower_bound(),
        Solution::hide(0.10),
        Solution::hide(0.02),
    ];

    println!(
        "{:<14} {:>10} {:>12} {:>10}",
        "solution", "avg power", "suspended", "wake-ups"
    );
    let baseline = SimulationBuilder::new(&trace, NEXUS_ONE).run();
    for solution in solutions {
        let result = SimulationBuilder::new(&trace, NEXUS_ONE)
            .solution(solution)
            .run();
        println!(
            "{:<14} {:>7.1} mW {:>11.1}% {:>10}",
            solution.label(),
            result.energy.average_power_mw(),
            result.energy.suspend_fraction() * 100.0,
            result.energy.resume_count,
        );
        if solution != Solution::ReceiveAll {
            println!(
                "{:<14}   ({:.0}% less energy than receive-all)",
                "",
                result.energy.saving_vs(&baseline.energy) * 100.0
            );
        }
    }
}
