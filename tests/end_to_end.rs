//! Cross-crate integration tests: the full HIDE protocol driven by
//! generated traces, validated against the simulator's filtering.

use hide::prelude::*;
use hide::protocol::client::OpenPortRegistry;
use hide::traces::useful::Usefulness;
use hide::wifi::frame::{Beacon, BroadcastDataFrame};
use hide::wifi::udp::UdpDatagram;

fn frame_for(ap: &AccessPoint, port: u16) -> BroadcastDataFrame {
    BroadcastDataFrame::new(
        ap.bssid(),
        UdpDatagram::new([10, 0, 0, 2], [255; 4], 4000, port, vec![0; 64]),
        false,
    )
}

/// The protocol-driven wake decisions must match the simulator's
/// port-set filtering exactly: for every DTIM interval of a real trace,
/// the AP's BTIM bit for the client is set iff the interval contains a
/// frame whose port the client listens on.
#[test]
fn protocol_agrees_with_simulator_filtering() {
    let trace = Scenario::CsDept.generate(300.0, 77);
    let marking = Usefulness::port_based(&trace, 0.10);
    let useful_ports = marking.useful_ports().to_vec();
    assert!(!useful_ports.is_empty());

    let mut ap = AccessPoint::new(MacAddr::station(0));
    let mut reg = OpenPortRegistry::new();
    for &p in &useful_ports {
        reg.bind(p, [0, 0, 0, 0]).unwrap();
    }
    let mut client = HideClient::new(MacAddr::station(1), reg);
    client.set_aid(ap.associate(client.mac()).unwrap());
    client.set_bssid(ap.bssid());
    let msg = client.prepare_suspend().unwrap();
    let ack = ap
        .process_port_message(&msg, &mut ApCtx::untimed())
        .unwrap();
    client.handle_ack(&ack).unwrap();

    let beacon_interval = 0.1024;
    let intervals = (trace.duration / beacon_interval).ceil() as u64;
    let mut frame_iter = trace.frames.iter().enumerate().peekable();
    let mut protocol_wakes = 0u64;
    let mut expected_wakes = 0u64;

    for i in 0..intervals {
        let end = (i + 1) as f64 * beacon_interval;
        let mut any_useful = false;
        while let Some((idx, f)) = frame_iter.peek() {
            if f.time >= end {
                break;
            }
            ap.enqueue_broadcast(frame_for(&ap, f.dst_port));
            any_useful |= marking.is_useful(*idx);
            frame_iter.next();
        }
        // Over-the-air round trip for every beacon.
        let beacon = Beacon::parse(&ap.dtim_beacon(i).to_bytes()).unwrap();
        let decision = client.handle_beacon(&beacon).unwrap();
        let delivered = ap.deliver_broadcasts();

        if any_useful {
            expected_wakes += 1;
            assert_eq!(
                decision,
                hide::protocol::client::WakeDecision::WakeForBroadcast,
                "interval {i}: useful frame buffered but client not flagged"
            );
            // Once awake, the client consumes exactly the useful frames.
            let consumed = delivered.iter().filter(|f| client.consumes(f)).count();
            assert!(consumed > 0, "interval {i}: woke but consumed nothing");
        } else {
            assert_eq!(
                decision,
                hide::protocol::client::WakeDecision::StaySuspended,
                "interval {i}: woke for nothing"
            );
        }
        if decision == hide::protocol::client::WakeDecision::WakeForBroadcast {
            protocol_wakes += 1;
        }
    }
    assert_eq!(protocol_wakes, expected_wakes);
    assert!(expected_wakes > 0, "trace produced no useful intervals");
}

/// Many clients with overlapping port sets: every client's BTIM bit is
/// correct on every DTIM, and legacy clients always wake when anything
/// is buffered.
#[test]
fn multi_client_btim_correctness() {
    use hide::protocol::client::{LegacyClient, WakeDecision};

    let mut ap = AccessPoint::new(MacAddr::station(0));
    let port_sets: [&[u16]; 4] = [&[1900], &[5353, 1900], &[137], &[]];
    let mut clients = Vec::new();
    for (i, ports) in port_sets.iter().enumerate() {
        let mut reg = OpenPortRegistry::new();
        for &p in *ports {
            reg.bind(p, [0, 0, 0, 0]).unwrap();
        }
        let mut c = HideClient::new(MacAddr::station(i as u32 + 1), reg);
        c.set_aid(ap.associate(c.mac()).unwrap());
        c.set_bssid(ap.bssid());
        let msg = c.prepare_suspend().unwrap();
        let ack = ap
            .process_port_message(&msg, &mut ApCtx::untimed())
            .unwrap();
        c.handle_ack(&ack).unwrap();
        clients.push(c);
    }
    let mut legacy = LegacyClient::new(MacAddr::station(100));
    legacy.set_aid(ap.associate(legacy.mac()).unwrap());

    let cases: [(&[u16], [bool; 4]); 4] = [
        (&[1900], [true, true, false, false]),
        (&[137, 137], [false, false, true, false]),
        (&[5353], [false, true, false, false]),
        (&[8080], [false, false, false, false]),
    ];
    for (round, (ports, expected)) in cases.into_iter().enumerate() {
        for &p in ports {
            ap.enqueue_broadcast(frame_for(&ap, p));
        }
        let beacon = Beacon::parse(&ap.dtim_beacon(round as u64).to_bytes()).unwrap();
        for (c, want) in clients.iter().zip(expected) {
            let got = c.handle_beacon(&beacon).unwrap() == WakeDecision::WakeForBroadcast;
            assert_eq!(got, want, "round {round}, client {}", c.mac());
        }
        // Legacy: wakes iff anything at all is buffered.
        let legacy_wakes = legacy.handle_beacon(&beacon).unwrap() == WakeDecision::WakeForBroadcast;
        assert_eq!(legacy_wakes, !ports.is_empty(), "round {round} legacy");
        ap.deliver_broadcasts();
    }
}

/// Port changes between suspends propagate: after closing a port, the
/// AP stops flagging the client for it.
#[test]
fn port_close_propagates_on_next_sync() {
    let mut ap = AccessPoint::new(MacAddr::station(0));
    let mut reg = OpenPortRegistry::new();
    reg.bind(1900, [0, 0, 0, 0]).unwrap();
    let mut client = HideClient::new(MacAddr::station(1), reg);
    client.set_aid(ap.associate(client.mac()).unwrap());
    client.set_bssid(ap.bssid());

    let msg = client.prepare_suspend().unwrap();
    let ack = ap
        .process_port_message(&msg, &mut ApCtx::untimed())
        .unwrap();
    client.handle_ack(&ack).unwrap();

    ap.enqueue_broadcast(frame_for(&ap, 1900));
    let beacon = ap.dtim_beacon(0);
    assert_eq!(
        client.handle_beacon(&beacon).unwrap(),
        hide::protocol::client::WakeDecision::WakeForBroadcast
    );
    ap.deliver_broadcasts();

    // The app closes the port (system resumes to process that event),
    // then the client re-syncs before suspending again.
    client.ports_mut().close(1900);
    assert!(client.needs_sync());
    let msg = client.prepare_suspend().unwrap();
    let ack = ap
        .process_port_message(&msg, &mut ApCtx::untimed())
        .unwrap();
    client.handle_ack(&ack).unwrap();

    ap.enqueue_broadcast(frame_for(&ap, 1900));
    let beacon = ap.dtim_beacon(1);
    assert_eq!(
        client.handle_beacon(&beacon).unwrap(),
        hide::protocol::client::WakeDecision::StaySuspended
    );
}

/// The facade's prelude exposes a working end-to-end energy pipeline.
#[test]
fn prelude_pipeline_smoke() {
    let trace = Scenario::Wrl.generate(120.0, 5);
    let result = SimulationBuilder::new(&trace, GALAXY_S4)
        .solution(Solution::hide(0.05))
        .run();
    assert!(result.energy.breakdown.total() > 0.0);
    assert!(result.energy.suspend_fraction() > 0.0);
    let _: SimulationResult = result;
}
