//! Reproduction of the paper's quantitative claims, at test-friendly
//! trace lengths. The bands asserted here are deliberately wider than
//! the paper's exact numbers (our traces are synthetic), but tight
//! enough that a regression in any model would trip them.

use hide::analysis::capacity::{CapacityAnalysis, NetworkConfig};
use hide::analysis::delay::{DelayAnalysis, DelayConfig};
use hide::energy::profile::{GALAXY_S4, NEXUS_ONE};
use hide::sim::experiment::{self, PAPER_FRACTIONS};
use hide::traces::scenario::Scenario;

const DURATION: f64 = 900.0;
const SEED: u64 = 2016;

/// Abstract: "saves 34%-75% energy for Nexus One ... when 10% of the
/// broadcast frames are useful".
#[test]
fn nexus_one_savings_at_10_percent() {
    let traces = Scenario::generate_all(DURATION, SEED);
    let comparisons = experiment::energy_comparison(NEXUS_ONE, &traces, &[0.10]);
    let s = experiment::savings_summary(&comparisons, 0.10);
    assert!(
        s.min_saving > 0.30 && s.max_saving < 0.80,
        "Nexus One @10%: {:.0}%-{:.0}% outside the paper's band",
        s.min_saving * 100.0,
        s.max_saving * 100.0
    );
}

/// Abstract: "18%-78% energy for Galaxy S4 when 10% ... useful".
#[test]
fn galaxy_s4_savings_at_10_percent() {
    let traces = Scenario::generate_all(DURATION, SEED);
    let comparisons = experiment::energy_comparison(GALAXY_S4, &traces, &[0.10]);
    let s = experiment::savings_summary(&comparisons, 0.10);
    assert!(
        s.min_saving > 0.18 && s.max_saving < 0.80,
        "Galaxy S4 @10%: {:.0}%-{:.0}% outside the paper's band",
        s.min_saving * 100.0,
        s.max_saving * 100.0
    );
}

/// Conclusion: "71%-82% for Nexus One and 62%-83% for Galaxy S4" at 2%.
#[test]
fn savings_at_2_percent() {
    let traces = Scenario::generate_all(DURATION, SEED);
    for (profile, lo, hi) in [(NEXUS_ONE, 0.60, 0.90), (GALAXY_S4, 0.55, 0.90)] {
        let comparisons = experiment::energy_comparison(profile, &traces, &[0.02]);
        let s = experiment::savings_summary(&comparisons, 0.02);
        assert!(
            s.min_saving > lo && s.max_saving < hi,
            "{} @2%: {:.0}%-{:.0}%",
            profile.name,
            s.min_saving * 100.0,
            s.max_saving * 100.0
        );
    }
}

/// Section VI.A: HIDE saves more than the client-side solution on
/// every trace at every fraction.
#[test]
fn hide_dominates_client_side_everywhere() {
    let traces = Scenario::generate_all(DURATION, SEED);
    for profile in [NEXUS_ONE, GALAXY_S4] {
        let comparisons = experiment::energy_comparison(profile, &traces, &PAPER_FRACTIONS);
        for c in &comparisons {
            let cs = c.bar("client-side").unwrap().saving_vs_receive_all;
            for f in PAPER_FRACTIONS {
                let label = format!("HIDE:{:.0}%", f * 100.0);
                let hide = c.bar(&label).unwrap().saving_vs_receive_all;
                assert!(
                    hide > cs,
                    "{} {}: {label} ({hide:.2}) vs client-side ({cs:.2})",
                    profile.name,
                    c.scenario
                );
            }
        }
    }
}

/// Section VI.A: the S4's pricier state transfers make client-side
/// help less there than on the Nexus One, on every trace.
#[test]
fn client_side_weaker_on_s4() {
    let traces = Scenario::generate_all(DURATION, SEED);
    let nexus = experiment::energy_comparison(NEXUS_ONE, &traces, &[]);
    let s4 = experiment::energy_comparison(GALAXY_S4, &traces, &[]);
    for (n, s) in nexus.iter().zip(&s4) {
        let n_cs = n.bar("client-side").unwrap().saving_vs_receive_all;
        let s_cs = s.bar("client-side").unwrap().saving_vs_receive_all;
        assert!(
            s_cs < n_cs,
            "{}: S4 {s_cs:.2} vs Nexus {n_cs:.2}",
            n.scenario
        );
    }
}

/// Fig. 9: with 2% useful frames the device suspends for most of the
/// trace even under heavy traffic, and HIDE always suspends more than
/// receive-all.
#[test]
fn suspend_fractions_shape() {
    let traces = Scenario::generate_all(DURATION, SEED);
    let rows = experiment::suspend_fractions(NEXUS_ONE, &traces);
    for row in &rows {
        let get = |label: &str| {
            row.fractions
                .iter()
                .find(|(l, _)| l == label)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert!(
            get("HIDE:2%") > 0.5,
            "{}: HIDE:2% {:.2}",
            row.scenario,
            get("HIDE:2%")
        );
        assert!(get("HIDE:10%") > get("receive-all"), "{}", row.scenario);
        // Heavy traces pin receive-all below 20% suspended (paper:
        // "less than 20% of the time in suspend mode").
        if row.scenario == "Classroom" || row.scenario == "WML" {
            assert!(get("receive-all") < 0.2, "{}", row.scenario);
        }
    }
}

/// Conclusion: "the impact of the HIDE system on network capacity is
/// less than 0.2%" (the figure's axis tops at 0.5%).
#[test]
fn capacity_overhead_negligible() {
    let analysis = CapacityAnalysis::new(NetworkConfig::table_ii());
    for point in analysis.figure_10().unwrap() {
        assert!(
            point.decrease < 0.005,
            "N={} p={}: {:.3}%",
            point.nodes,
            point.hide_fraction,
            point.decrease * 100.0
        );
    }
}

/// Conclusion: "the impact on packet round-trip time is no more than
/// 2.3%" at the paper's settings; ≈0.05% at a 10-minute interval.
#[test]
fn delay_overhead_matches_paper_band() {
    let analysis = DelayAnalysis::new(DelayConfig::default());
    let worst = analysis.point(50);
    assert!(
        (0.018..0.028).contains(&worst.overhead),
        "worst-case overhead {:.3}%",
        worst.overhead * 100.0
    );
    let cfg = DelayConfig {
        sync_interval_secs: 600.0,
        ..DelayConfig::default()
    };
    let best = DelayAnalysis::new(cfg).point(50);
    assert!(
        best.overhead < 0.001,
        "10-min interval: {:.4}%",
        best.overhead * 100.0
    );
}

/// Fig. 6: the five traces reproduce the paper's volume ordering and
/// the 0-50 frames/sec support of the CDFs.
#[test]
fn trace_volumes_match_fig6() {
    let traces = Scenario::generate_all(1800.0, SEED);
    let vols = experiment::trace_volumes(&traces);
    let mean = |name: &str| vols.iter().find(|v| v.scenario == name).unwrap().mean_fps;
    assert!(mean("WML") > mean("Classroom"));
    assert!(mean("Classroom") > mean("CS_Dept"));
    assert!(mean("CS_Dept") > mean("WRL"));
    assert!(mean("WRL") > mean("Starbucks"));
    for v in &vols {
        let max = v.cdf_points.last().unwrap().0;
        assert!(max < 80.0, "{}: per-second max {max}", v.scenario);
    }
}
