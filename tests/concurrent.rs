//! Concurrency integration test: one shared AP, many client threads.
//!
//! A real AP serves stations concurrently; this test drives the
//! `AccessPoint` behind a `parking_lot::Mutex` from many threads while
//! beacons fan out over `crossbeam` channels, checking that the
//! protocol state (AIDs, port table, BTIM decisions) stays consistent
//! under interleaving.

use crossbeam::channel;
use hide::protocol::ap::{AccessPoint, ApCtx};
use hide::protocol::client::{HideClient, OpenPortRegistry, WakeDecision};
use hide::wifi::frame::{Beacon, BroadcastDataFrame};
use hide::wifi::mac::MacAddr;
use hide::wifi::udp::UdpDatagram;
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread;

const CLIENTS: usize = 16;
const ROUNDS: u64 = 20;

fn frame(bssid: MacAddr, port: u16) -> BroadcastDataFrame {
    BroadcastDataFrame::new(
        bssid,
        UdpDatagram::new([10, 0, 0, 3], [255; 4], 4000, port, vec![0; 32]),
        false,
    )
}

#[test]
fn concurrent_clients_sync_and_decide_consistently() {
    let ap = Arc::new(Mutex::new(AccessPoint::new(MacAddr::station(0))));

    // Each client listens on its own exclusive port 1000 + i.
    let mut beacon_txs = Vec::new();
    let (result_tx, result_rx) = channel::unbounded::<(usize, u64, WakeDecision)>();
    let mut handles = Vec::new();

    for i in 0..CLIENTS {
        let (btx, brx) = channel::unbounded::<Vec<u8>>();
        beacon_txs.push(btx);
        let ap = Arc::clone(&ap);
        let result_tx = result_tx.clone();
        handles.push(thread::spawn(move || {
            let mut registry = OpenPortRegistry::new();
            registry.bind(1000 + i as u16, [0, 0, 0, 0]).unwrap();
            let mut client = HideClient::new(MacAddr::station(i as u32 + 1), registry);

            // Associate and run the Fig. 2 handshake under the lock.
            {
                let mut ap = ap.lock();
                let aid = ap.associate(client.mac()).unwrap();
                client.set_aid(aid);
                client.set_bssid(ap.bssid());
                let msg = client.prepare_suspend().unwrap();
                let ack = ap
                    .process_port_message(&msg, &mut ApCtx::untimed())
                    .unwrap();
                client.handle_ack(&ack).unwrap();
            }

            // Receive beacons off the air and report decisions.
            for (round, bytes) in brx.iter().enumerate() {
                let beacon = Beacon::parse(&bytes).unwrap();
                let decision = client.handle_beacon(&beacon).unwrap();
                result_tx.send((i, round as u64, decision)).unwrap();
            }
        }));
    }
    drop(result_tx);

    // Wait until every client is associated and synced.
    loop {
        let ap = ap.lock();
        if ap.client_count() == CLIENTS && ap.port_table().client_count() == CLIENTS {
            break;
        }
        drop(ap);
        thread::yield_now();
    }

    // Each round targets exactly one client's port.
    for round in 0..ROUNDS {
        let target = (round as usize * 7 + 3) % CLIENTS;
        let bytes = {
            let mut ap = ap.lock();
            let bssid = ap.bssid();
            ap.enqueue_broadcast(frame(bssid, 1000 + target as u16));
            let beacon = ap.dtim_beacon(round);
            ap.deliver_broadcasts();
            beacon.to_bytes()
        };
        for btx in &beacon_txs {
            btx.send(bytes.clone()).unwrap();
        }
    }
    drop(beacon_txs);

    // Collect CLIENTS * ROUNDS decisions and verify each.
    let mut seen = 0;
    for (client_idx, round, decision) in result_rx.iter() {
        let target = (round as usize * 7 + 3) % CLIENTS;
        let expected = if client_idx == target {
            WakeDecision::WakeForBroadcast
        } else {
            WakeDecision::StaySuspended
        };
        assert_eq!(
            decision, expected,
            "round {round}: client {client_idx} (target {target})"
        );
        seen += 1;
    }
    assert_eq!(seen, CLIENTS * ROUNDS as usize);

    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn access_point_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AccessPoint>();
    assert_send_sync::<HideClient>();
}

#[test]
fn concurrent_port_updates_leave_table_consistent() {
    let ap = Arc::new(Mutex::new(AccessPoint::new(MacAddr::station(0))));
    let mut handles = Vec::new();
    for i in 0..8u32 {
        let ap = Arc::clone(&ap);
        handles.push(thread::spawn(move || {
            let mac = MacAddr::station(i + 1);
            let bssid = ap.lock().bssid();
            let mut registry = OpenPortRegistry::new();
            registry.bind(2000 + i as u16, [0, 0, 0, 0]).unwrap();
            let mut client = HideClient::new(mac, registry);
            {
                let mut guard = ap.lock();
                client.set_aid(guard.associate(mac).unwrap());
            }
            client.set_bssid(bssid);
            // Churn the port set repeatedly from this thread.
            for round in 0..50u16 {
                client.ports_mut().close(3000 + i as u16 * 100 + round);
                client
                    .ports_mut()
                    .bind(3000 + i as u16 * 100 + round, [0, 0, 0, 0])
                    .unwrap();
                let msg = client.prepare_suspend().unwrap();
                let mut guard = ap.lock();
                let ack = guard
                    .process_port_message(&msg, &mut ApCtx::untimed())
                    .unwrap();
                drop(guard);
                client.handle_ack(&ack).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let guard = ap.lock();
    // Every client's final sync is reflected: 8 clients, each with its
    // initial port plus 50 churned ports.
    assert_eq!(guard.port_table().client_count(), 8);
    assert_eq!(guard.port_table().entry_count(), 8 * 51);
    assert_eq!(guard.port_messages_received(), 8 * 50);
}
