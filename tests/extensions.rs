//! Cross-crate integration tests for the extension features, driven
//! entirely through the `hide` facade's prelude.

use hide::prelude::*;

#[test]
fn protocol_simulation_through_facade() {
    let trace = Scenario::Starbucks.generate(300.0, 11);
    let protocol = ProtocolSimulation::new(&trace, NEXUS_ONE, 0.10);
    let outcome = protocol.run().expect("protocol run succeeds");
    let marked = protocol.marking_equivalent().run();
    assert_eq!(
        outcome.stats.frames_consumed as usize,
        marked.received_frames
    );
    // Both agree HIDE leaves the phone mostly suspended at a café.
    assert!(outcome.energy.suspend_fraction() > 0.8);
    assert!(marked.energy.suspend_fraction() > 0.8);
}

#[test]
fn fleet_and_battery_arithmetic_compose() {
    let trace = Scenario::Wrl.generate(300.0, 12);
    let result = NetworkSimulation::new(&trace, GALAXY_S4, fleet(6, 1.0, 4)).run();
    assert!(result.fleet_saving > 0.3);

    // Fleet saving translates into standby life via the battery model.
    let battery = Battery::GALAXY_S4;
    let per_phone_before = result.baseline_power_mw / 6.0 / 1e3 + GALAXY_S4.suspend_power;
    let per_phone_after = result.total_power_mw / 6.0 / 1e3 + GALAXY_S4.suspend_power;
    let extension = battery.life_extension(per_phone_before, per_phone_after);
    assert!(extension > 1.2, "life extension {extension}");
}

#[test]
fn hybrid_and_unicast_compose() {
    let trace = Scenario::CsDept.generate(300.0, 13);
    let unicast = UnicastTrace::poisson(trace.duration, 0.1, 7);
    let result = SimulationBuilder::new(&trace, NEXUS_ONE)
        .solution(Solution::hybrid(0.10, 0.04))
        .unicast(&unicast)
        .run();
    assert!(result.energy.breakdown.total() > 0.0);
    assert!(result.wake_frames < result.received_frames + unicast.len());
    // Unicast deliveries wake the phone on top of the hybrid filter.
    let quiet = SimulationBuilder::new(&trace, NEXUS_ONE)
        .solution(Solution::hybrid(0.10, 0.04))
        .run();
    assert!(result.energy.breakdown.total() > quiet.energy.breakdown.total());
}

#[test]
fn usefulness_markings_drive_port_registries() {
    // The marking's port set plugs straight into a client registry —
    // the path the protocol simulation uses.
    let trace = Scenario::Wml.generate(200.0, 14);
    let marking = Usefulness::port_based(&trace, 0.08);
    let mut registry = OpenPortRegistry::new();
    for &p in marking.useful_ports() {
        registry.bind(p, [0, 0, 0, 0]).unwrap();
    }
    assert_eq!(registry.reportable_ports(), marking.useful_ports());

    let mut ap = AccessPoint::new(MacAddr::station(0));
    let mut client = HideClient::new(MacAddr::station(1), registry);
    client.set_aid(ap.associate(client.mac()).unwrap());
    client.set_bssid(ap.bssid());
    let msg = client.prepare_suspend().unwrap();
    let ack = ap
        .process_port_message(&msg, &mut ApCtx::untimed())
        .unwrap();
    client.handle_ack(&ack).unwrap();
    assert!(client.is_suspended());

    // Legacy coexistence through the same facade.
    let mut legacy = LegacyClient::new(MacAddr::station(2));
    legacy.set_aid(ap.associate(legacy.mac()).unwrap());
    let beacon = ap.dtim_beacon(0);
    assert_eq!(
        legacy.handle_beacon(&beacon).unwrap(),
        WakeDecision::StaySuspended
    );
}
