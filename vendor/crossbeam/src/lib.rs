//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::channel::unbounded` on top of
//! `std::sync::mpsc`. The repo uses single-consumer channels only, so
//! the mpsc receiver (not clonable, unlike crossbeam's) is sufficient.

/// Multi-producer channels, mirroring `crossbeam::channel`.
pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn fan_in_from_threads() {
        let (tx, rx) = channel::unbounded::<u32>();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<u32> = rx.iter().collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
