//! Offline stand-in for `parking_lot`.
//!
//! Wraps the standard-library primitives behind `parking_lot`'s
//! ergonomics: `lock()`/`read()`/`write()` return guards directly
//! instead of `Result`s. Poisoning is translated to a recovered guard
//! (`parking_lot` has no poisoning), so a panic in one thread does not
//! cascade into every later lock site.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns an error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose `read()`/`write()` never return errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn contended_increments_all_land() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }
}
