//! Offline stand-in for `criterion`.
//!
//! Implements the subset of the criterion 0.5 API the repo's benches
//! use — `Criterion`, `benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — as a small wall-clock
//! runner. No statistics engine: each benchmark is calibrated to a
//! fixed measurement budget, run for several samples, and the best
//! (least-noise) sample is reported as ns/iter on stdout.
//!
//! `cargo bench` output therefore stays human-comparable across runs,
//! and the harness builds with zero external dependencies.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-sample measurement budget. Small enough that full bench suites
/// finish quickly on CI hardware; large enough to amortize timer noise.
const SAMPLE_BUDGET: Duration = Duration::from_millis(25);
/// Samples per benchmark; the minimum is reported.
const SAMPLES: usize = 5;

/// Times one batch of iterations of the benchmarked routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `f` for the batch's iteration count, timing the whole batch.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter, for groups whose name already says it all.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One timed run: calibrate an iteration count to the sample budget,
/// take several samples, report the fastest.
fn run_bench(label: &str, mut routine: impl FnMut(&mut Bencher)) -> Duration {
    // Calibration: start at one iteration and grow until a batch fills
    // a meaningful slice of the budget.
    let mut iters: u64 = 1;
    let per_iter = loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        if b.elapsed >= SAMPLE_BUDGET / 10 || iters >= 1 << 30 {
            break b.elapsed / (iters as u32).max(1);
        }
        iters = iters.saturating_mul(8);
    };
    let batch = if per_iter.is_zero() {
        iters
    } else {
        (SAMPLE_BUDGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64
    };

    let mut best = Duration::MAX;
    for _ in 0..SAMPLES {
        let mut b = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        let per = b.elapsed / (batch as u32).max(1);
        if per < best {
            best = per;
        }
    }
    println!("{label:<50} time: {best:>12.2?}/iter");
    best
}

/// The top-level bench harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_bench(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the runner's sampling is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the runner's budget is fixed.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_bench(&label, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into().id);
        run_bench(&label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a bench group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| 1 + 1)
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
