//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so external crates
//! cannot be fetched; this workspace-local package provides the small
//! `rand` 0.8 API surface the repo actually uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen_range, gen_bool}` — on top
//! of a xoshiro256++ generator seeded through SplitMix64.
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`, so
//! seed-pinned expectations were re-measured when this stub was
//! introduced. Determinism guarantees are identical: the same seed
//! always yields the same stream, on every platform.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range.
///
/// Implemented for `Range`/`RangeInclusive` over the integer widths and
/// `Range<f64>`, which is all `gen_range` is called with in this repo.
pub trait SampleRange {
    /// The sampled value type.
    type Output;

    /// Draws one uniform sample from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Maps 64 random bits to a double in `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform draw from `[0, span)` via 128-bit widening multiply
/// (Lemire's method, without the rejection step; the bias at these
/// span sizes is far below anything the statistical tests resolve).
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty f64 range");
        self.start + unit_f64(rng) * (self.end - self.start)
    }
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(below(rng, span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        unit_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// SplitMix64: seeds the xoshiro state and breaks up low-entropy seeds.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The standard generator: xoshiro256++ (Blackman & Vigna).
    ///
    /// Not the upstream ChaCha12 `StdRng`, but the same contract this
    /// repo relies on: seedable, deterministic, statistically sound for
    /// simulation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..u64::MAX), b.gen_range(0u64..u64::MAX));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(1024..u16::MAX);
            assert!((1024..u16::MAX).contains(&v));
            let f = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(0usize..=9);
            assert!(i <= 9);
        }
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn uniform_f64_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(11);
        let sum: f64 = (0..100_000).map(|_| rng.gen_range(0.0..1.0)).sum();
        assert!((sum / 100_000.0 - 0.5).abs() < 0.01);
    }
}
