//! Offline stand-in for `proptest`.
//!
//! Random-input property testing with the same surface syntax as
//! proptest 1.x — the `proptest!` macro, `prop_assert!`/
//! `prop_assert_eq!`, `any::<T>()`, range and tuple strategies,
//! `prop_map`, and `proptest::collection::vec` — implemented on the
//! workspace-local `rand` stub.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index and seed;
//!   inputs are deterministic per (test name, case index), so a failure
//!   reproduces by rerunning the test.
//! * **No persistence files.** Every run executes the same cases.
//! * Strategies are generators only (`generate(rng)`), not the
//!   `ValueTree` machinery.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic RNG handed to strategies; one per test case.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Derives the RNG for `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }
}

/// A failed property within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Controls how many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.inner.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.inner.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.inner.gen_bool(0.5)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.inner.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.inner.gen_range(-1.0e9..1.0e9)
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: PhantomData,
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive-exclusive length band for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                min: r.start,
                max_excl: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_excl: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_excl: n + 1,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.inner.gen_range(self.size.min..self.size.max_excl);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-import namespace, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case
/// (not the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...)` body
/// runs for `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        /// Doc comments inside the macro must be accepted.
        fn range_strategies_stay_in_bounds(
            x in 10u16..20,
            y in 0.5f64..1.5,
            n in 1usize..=4,
        ) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((0.5..1.5).contains(&y));
            prop_assert!((1..=4).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        fn vec_and_tuple_strategies_compose(
            items in vec((1u8..5, 0u64..100), 0..8),
            flag in any::<bool>(),
            raw in any::<[u8; 4]>(),
        ) {
            prop_assert!(items.len() < 8);
            for (a, b) in &items {
                prop_assert!((1..5).contains(a));
                prop_assert!(*b < 100);
            }
            prop_assert_eq!(raw.len(), 4);
            let _ = flag;
        }
    }

    proptest! {
        fn prop_map_applies(doubled in (1u32..50).prop_map(|v| v * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert!((2..100).contains(&doubled));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::TestRng::for_case("t", 3);
        let b = crate::TestRng::for_case("t", 3);
        let mut a = a;
        let mut b = b;
        let sa = (0u16..100).generate(&mut a);
        let sb = (0u16..100).generate(&mut b);
        assert_eq!(sa, sb);
    }
}
