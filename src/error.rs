//! Top-level error type unifying every layer's failures.

use hide_apd::ApdError;
use hide_core::CoreError;
use hide_energy::EnergyError;
use hide_fleet::FleetError;
use hide_sim::SimError;
use hide_traces::io::TraceIoError;
use hide_wifi::WifiError;
use std::fmt;

/// Any failure the HIDE workspace can report, in one enum.
///
/// Binaries (and library callers that cross layer boundaries) can use
/// `Result<_, HideError>` with `?` throughout: every crate-level error
/// converts via [`From`]. [`CoreError`] already wraps [`WifiError`],
/// and [`SimError`] wraps [`EnergyError`], so conversions flatten to
/// the most specific variant available.
#[derive(Debug)]
#[non_exhaustive]
pub enum HideError {
    /// 802.11 encoding/decoding or model failure.
    Wifi(WifiError),
    /// HIDE protocol failure at the AP or client.
    Protocol(CoreError),
    /// The energy model rejected a timeline.
    Energy(EnergyError),
    /// Trace serialization or parsing failure.
    TraceIo(TraceIoError),
    /// Simulation or experiment failure.
    Sim(SimError),
    /// Fleet simulator configuration or protocol failure.
    Fleet(FleetError),
    /// AP daemon failure (sockets, control protocol, snapshots).
    Apd(ApdError),
    /// Filesystem failure (CSV or metrics output).
    Io(std::io::Error),
}

impl fmt::Display for HideError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HideError::Wifi(e) => write!(f, "wifi: {e}"),
            HideError::Protocol(e) => write!(f, "protocol: {e}"),
            HideError::Energy(e) => write!(f, "energy model: {e}"),
            HideError::TraceIo(e) => write!(f, "trace io: {e}"),
            HideError::Sim(e) => write!(f, "simulation: {e}"),
            HideError::Fleet(e) => write!(f, "fleet: {e}"),
            HideError::Apd(e) => write!(f, "ap daemon: {e}"),
            HideError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for HideError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HideError::Wifi(e) => Some(e),
            HideError::Protocol(e) => Some(e),
            HideError::Energy(e) => Some(e),
            HideError::TraceIo(e) => Some(e),
            HideError::Sim(e) => Some(e),
            HideError::Fleet(e) => Some(e),
            HideError::Apd(e) => Some(e),
            HideError::Io(e) => Some(e),
        }
    }
}

impl From<WifiError> for HideError {
    fn from(e: WifiError) -> Self {
        HideError::Wifi(e)
    }
}

impl From<CoreError> for HideError {
    fn from(e: CoreError) -> Self {
        HideError::Protocol(e)
    }
}

impl From<EnergyError> for HideError {
    fn from(e: EnergyError) -> Self {
        HideError::Energy(e)
    }
}

impl From<TraceIoError> for HideError {
    fn from(e: TraceIoError) -> Self {
        HideError::TraceIo(e)
    }
}

impl From<SimError> for HideError {
    fn from(e: SimError) -> Self {
        HideError::Sim(e)
    }
}

impl From<FleetError> for HideError {
    fn from(e: FleetError) -> Self {
        HideError::Fleet(e)
    }
}

impl From<ApdError> for HideError {
    fn from(e: ApdError) -> Self {
        HideError::Apd(e)
    }
}

impl From<std::io::Error> for HideError {
    fn from(e: std::io::Error) -> Self {
        HideError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_converts_and_chains() {
        let cases: Vec<HideError> = vec![
            WifiError::InvalidAid(0).into(),
            EnergyError::NonPositiveDuration(0.0).into(),
            SimError::MissingBar {
                label: "client-side".into(),
            }
            .into(),
            FleetError::Core(CoreError::NoFreeAid).into(),
            ApdError::from(CoreError::NoFreeAid).into(),
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into(),
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
            assert!(std::error::Error::source(&e).is_some());
        }
    }

    #[test]
    fn sim_energy_error_flattens_through_question_mark() {
        fn inner() -> Result<(), SimError> {
            Err(EnergyError::NonPositiveDuration(-1.0).into())
        }
        fn outer() -> Result<(), HideError> {
            inner()?;
            Ok(())
        }
        assert!(matches!(outer(), Err(HideError::Sim(SimError::Energy(_)))));
    }
}
