//! # HIDE — AP-assisted broadcast traffic management
//!
//! Facade crate for the reproduction of *HIDE: AP-assisted Broadcast
//! Traffic Management to Save Smartphone Energy* (Peng et al., ICDCS
//! 2016). Re-exports the public API of every workspace crate:
//!
//! * [`wifi`] — 802.11 frames, information elements, PHY and DCF models
//! * [`protocol`] — the HIDE AP and client protocol implementation
//! * [`energy`] — the Section-IV smartphone energy model
//! * [`traces`] — synthetic broadcast-traffic traces for the five scenarios
//! * [`sim`] — the trace-driven simulator and experiment runners
//! * [`policy`] — the device-profile registry and the pluggable
//!   wake-policy seam (HIDE, legacy PSM, scheduled wake)
//! * [`fleet`] — the discrete-event multi-BSS fleet simulator with
//!   client lifecycle churn
//! * [`apd`] — the AP as a long-running UDP service (`hide-apd`) with
//!   live telemetry and snapshot/restore
//! * [`analysis`] — the Section-V capacity and delay overhead analysis
//! * [`obs`] — deterministic counters, histograms and span timers
//!
//! plus the unifying pieces that only make sense at the top:
//! [`HideError`] (every layer's error, one enum) and [`prelude`].
//!
//! # Quickstart
//!
//! ```
//! use hide::prelude::*;
//!
//! // Generate a coffee-shop-like broadcast trace, run HIDE at 10% useful
//! // frames on a Nexus One, and compare with receiving everything.
//! let trace = Scenario::Starbucks.generate(60.0, 42);
//! let hide = SimulationBuilder::new(&trace, NEXUS_ONE)
//!     .solution(Solution::hide(0.10))
//!     .run();
//! let all = SimulationBuilder::new(&trace, NEXUS_ONE)
//!     .solution(Solution::ReceiveAll)
//!     .run();
//! assert!(hide.energy.breakdown.total() < all.energy.breakdown.total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hide_analysis as analysis;
pub use hide_apd as apd;
pub use hide_core as protocol;
pub use hide_energy as energy;
pub use hide_fleet as fleet;
pub use hide_obs as obs;
pub use hide_policy as policy;
pub use hide_sim as sim;
pub use hide_traces as traces;
pub use hide_wifi as wifi;

pub mod error;

pub use error::HideError;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::error::HideError;
    pub use hide_analysis::capacity::{CapacityAnalysis, NetworkConfig};
    pub use hide_analysis::delay::{DelayAnalysis, DelayConfig};
    pub use hide_apd::{ApdConfig, ApdError, ApdSnapshot, DaemonHandle};
    pub use hide_core::ap::{AccessPoint, ApCtx, ApSnapshot};
    pub use hide_core::client::{HideClient, LegacyClient, OpenPortRegistry, WakeDecision};
    pub use hide_core::clock::{Clock, MonotonicClock, VirtualClock};
    pub use hide_energy::battery::Battery;
    pub use hide_energy::profile::{DeviceProfile, GALAXY_S4, NEXUS_ONE};
    pub use hide_fleet::{ChurnConfig, FleetConfig, FleetError, FleetResult};
    pub use hide_obs::{
        Counter, Distribution, FlightRecorder, Histogram, MetricsSink, NoopSink, NoopTrace,
        Recorder, Stage, TraceEvent, TraceEventKind, TraceSink, WakeCause, WakeClass,
    };
    pub use hide_policy::{DeviceEntry, LifetimeProjection, ScheduleConfig, WakePolicy};
    pub use hide_sim::network::{fleet, NetworkSimulation};
    pub use hide_sim::protocol_sim::ProtocolSimulation;
    pub use hide_sim::solution::Solution;
    pub use hide_sim::{SimError, SimulationBuilder, SimulationResult};
    pub use hide_traces::scenario::Scenario;
    pub use hide_traces::unicast::UnicastTrace;
    pub use hide_traces::useful::Usefulness;
    pub use hide_traces::Trace;
    pub use hide_wifi::mac::{Aid, MacAddr};
}
